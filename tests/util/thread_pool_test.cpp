#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace easel::util {
namespace {

TEST(ThreadPool, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1u); }

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.workers(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7, [&](std::size_t i, std::size_t) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool{1};
  const auto main_thread = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, 3, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_thread);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // one worker visits indices in order
}

TEST(ThreadPool, ZeroWorkersTreatedAsOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.workers(), 1u);
  std::size_t count = 0;
  pool.parallel_for(5, 1, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(ThreadPool, WorkerIndicesStayInRange) {
  ThreadPool pool{3};
  std::mutex mutex;
  std::set<std::size_t> workers_seen;
  pool.parallel_for(300, 1, [&](std::size_t, std::size_t worker) {
    const std::lock_guard<std::mutex> lock{mutex};
    workers_seen.insert(worker);
  });
  for (const std::size_t w : workers_seen) EXPECT_LT(w, 3u);
}

TEST(ThreadPool, MoreWorkersThanWork) {
  ThreadPool pool{8};
  std::atomic<int> count{0};
  pool.parallel_for(3, 10, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool{2};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t) { FAIL() << "no work expected"; });
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool{4};
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, 9, [&](std::size_t i, std::size_t) { sum += i; });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPool, CallbackExceptionRethrownOnCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(100, 1,
                                 [&](std::size_t i, std::size_t) {
                                   if (i == 42) throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace easel::util
