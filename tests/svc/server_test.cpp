// The daemon serve loop over real loopback sockets: client round-trips
// are byte-identical to the in-process engines, peers can fan shards out,
// and no malformed byte stream — foreign magic, truncation, a lying
// length prefix, a mid-request disconnect — takes the server down or
// leaves a partial result behind.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>

#include "svc/client.hpp"

namespace easel::svc {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.series = "e1";
  spec.seed = 77;
  spec.cases = 2;
  spec.obs_ms = 2000;
  spec.shards = 3;
  return spec;
}

fi::CampaignOptions tiny_options() {
  fi::CampaignOptions options;
  options.test_case_count = 2;
  options.observation_ms = 2000;
  options.seed = 77;
  return options;
}

/// One live daemon on a kernel-chosen loopback port, served from a
/// background thread, stopped and joined on destruction.
class LiveServer {
 public:
  explicit LiveServer(const std::string& store_dir, ServiceConfig config = {})
      : service_(store_dir, std::move(config)), server_(service_) {
    EXPECT_TRUE(server_.start(0));
    thread_ = std::thread{[this] { (void)server_.serve(); }};
  }

  ~LiveServer() {
    server_.stop();
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] CampaignService& service() noexcept { return service_; }

 private:
  CampaignService service_;
  Server server_;
  std::thread thread_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "server_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ServerTest, PingPongOverLoopback) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;
}

TEST_F(ServerTest, SubmitOverLoopbackMatchesInProcessEngine) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto result = client->submit(tiny_spec(), &error);
  ASSERT_TRUE(result.has_value()) << error;

  std::ostringstream reference;
  fi::save_e1(fi::run_e1(tiny_options()), reference,
              fi::e1_shard_key(tiny_options(), {0, fi::e1_error_count()}));
  EXPECT_EQ(result->blob, reference.str());
  EXPECT_EQ(result->stats.misses, 3u);

  // Same connection, warm resubmission: all hits, same bytes.
  const auto warm = client->submit(tiny_spec(), &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_EQ(warm->stats.hits, 3u);
  EXPECT_EQ(warm->blob, result->blob);
}

TEST_F(ServerTest, SubmitShardReturnsAVerifiableBlob) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto blob = client->submit_shard(tiny_spec(), {0, 16}, &error);
  ASSERT_TRUE(blob.has_value()) << error;
  std::istringstream in{*blob};
  EXPECT_TRUE(fi::load_e1(in, fi::e1_shard_key(tiny_options(), {0, 16})).has_value());
}

TEST_F(ServerTest, DaemonFansShardsOutToAPeer) {
  const std::string peer_dir = dir_ + "_peer";
  LiveServer peer{peer_dir};
  ServiceConfig config;
  config.peers.push_back({"127.0.0.1", peer.port()});
  LiveServer front{dir_, std::move(config)};

  std::string error;
  auto client = Client::connect("127.0.0.1", front.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto result = client->submit(tiny_spec(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stats.peer_shards, 3u);  // every miss went to the peer

  std::ostringstream reference;
  fi::save_e1(fi::run_e1(tiny_options()), reference,
              fi::e1_shard_key(tiny_options(), {0, fi::e1_error_count()}));
  EXPECT_EQ(result->blob, reference.str());
  std::filesystem::remove_all(peer_dir);
}

TEST_F(ServerTest, RejectsBadSpecWithUsefulErrorAndStaysUp) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  // The client validates before sending, so an out-of-range subset never
  // even reaches the wire...
  CampaignSpec bad = tiny_spec();
  bad.error_end = 500;
  EXPECT_FALSE(client->submit(bad, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos) << error;
  // ...and a raw submit frame that bypasses that validation earns a
  // daemon-side error frame naming the reason.
  auto raw = util::TcpStream::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(raw.has_value());
  ASSERT_TRUE(util::send_frame(*raw, static_cast<std::uint8_t>(MsgType::submit),
                               "not a campaign spec"));
  auto reply = util::recv_frame(*raw);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, static_cast<std::uint8_t>(MsgType::error));
  EXPECT_NE(reply->payload.find("magic"), std::string::npos) << reply->payload;
  // Same connections still serve good requests.
  EXPECT_TRUE(client->ping(&error)) << error;
  EXPECT_EQ(daemon.service().store().stats().puts, 0u);
}

TEST_F(ServerTest, GarbageMagicDropsOnlyThatConnection) {
  LiveServer daemon{dir_};
  auto raw = util::TcpStream::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(raw.has_value());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(raw->send_all(garbage, sizeof garbage - 1));
  raw->shutdown_send();
  // The server drops the connection without replying.
  std::string error;
  EXPECT_FALSE(util::recv_frame(*raw, &error).has_value());
  // And keeps serving everyone else.
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;
}

TEST_F(ServerTest, MidFrameDisconnectLeavesNoPartialState) {
  LiveServer daemon{dir_};
  auto raw = util::TcpStream::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(raw.has_value());
  // A submit frame header promising a large payload, then disconnect.
  std::string header{util::kFrameMagic, sizeof util::kFrameMagic};
  header.push_back(static_cast<char>(MsgType::submit));
  const std::uint32_t length = 100000;
  header.push_back(static_cast<char>(length & 0xff));
  header.push_back(static_cast<char>((length >> 8) & 0xff));
  header.push_back(static_cast<char>((length >> 16) & 0xff));
  header.push_back(static_cast<char>((length >> 24) & 0xff));
  ASSERT_TRUE(raw->send_all(header.data(), header.size()));
  raw->close();

  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;
  EXPECT_EQ(daemon.service().store().stats().puts, 0u);  // nothing partial
  EXPECT_TRUE(daemon.service().store().fsck().clean());
}

TEST_F(ServerTest, OversizedLengthPrefixIsRejectedWithoutAllocation) {
  LiveServer daemon{dir_};
  auto raw = util::TcpStream::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(raw.has_value());
  std::string header{util::kFrameMagic, sizeof util::kFrameMagic};
  header.push_back(static_cast<char>(MsgType::submit));
  for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>(0xff));
  ASSERT_TRUE(raw->send_all(header.data(), header.size()));
  // Server drops the connection (no error frame is possible mid-desync).
  std::string error;
  EXPECT_FALSE(util::recv_frame(*raw, &error).has_value());
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;
}

TEST_F(ServerTest, IdleConnectionDoesNotWedgeShutdown) {
  // Regression: a client that connects and then sends nothing used to pin
  // its handler thread inside recv_frame, so stop() + join never returned
  // and the daemon's shutdown stats line was lost.  Handlers now poll the
  // stop flag between frames; shutdown must complete promptly.
  auto daemon = std::make_unique<LiveServer>(dir_);
  auto idle = util::TcpStream::connect("127.0.0.1", daemon->port());
  ASSERT_TRUE(idle.has_value());
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon->port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  EXPECT_TRUE(client->ping(&error)) << error;  // the idle peer is accepted by now

  const auto before = std::chrono::steady_clock::now();
  daemon.reset();  // stop() + serve()-thread join, with the idle client still open
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 3000);
}

TEST_F(ServerTest, UnknownFrameTypeGetsAnErrorFrame) {
  LiveServer daemon{dir_};
  auto raw = util::TcpStream::connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(raw.has_value());
  ASSERT_TRUE(util::send_frame(*raw, 99, "what is this"));
  auto reply = util::recv_frame(*raw);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, static_cast<std::uint8_t>(MsgType::error));
  EXPECT_NE(reply->payload.find("unknown frame type"), std::string::npos);
}

}  // namespace
}  // namespace easel::svc
