// Campaign-service protocol: spec and result envelopes round-trip exactly
// and reject every deviation — the daemon never guesses at a malformed
// message.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arrestor/param_set.hpp"

namespace easel::svc {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.series = "e1";
  spec.seed = 77;
  spec.cases = 2;
  spec.obs_ms = 2000;
  spec.shards = 3;
  return spec;
}

TEST(SpecFormat, RoundTripsEveryField) {
  CampaignSpec spec = tiny_spec();
  spec.series = "e2";
  spec.ram = 20;
  spec.stack = 10;
  spec.error_begin = 4;
  spec.error_end = 17;
  spec.prune = false;
  spec.verify_prune = 0.125;
  spec.recovery = 2;
  const auto parsed = parse_spec(to_text(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);
}

TEST(SpecFormat, RoundTripsInlineParamsPayloadWithNewlines) {
  CampaignSpec spec = tiny_spec();
  std::ostringstream params;
  arrestor::save(arrestor::NodeParamSet::rom(), params);
  spec.params_text = params.str();
  ASSERT_GT(spec.params_text.find('\n'), 0u);  // multi-line payload
  const auto parsed = parse_spec(to_text(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params_text, spec.params_text);
  // And the payload actually reconstitutes a validated parameter set.
  const auto options = spec_options(*parsed);
  ASSERT_TRUE(options.has_value());
  EXPECT_NE(options->params, nullptr);
}

TEST(SpecFormat, RejectsForeignMagic) {
  std::string error;
  EXPECT_FALSE(parse_spec("easel-campaign-spec v2\n", &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(SpecFormat, RejectsUnknownSeries) {
  std::string text = to_text(tiny_spec());
  const auto pos = text.find("series e1");
  text.replace(pos, 9, "series e3");
  std::string error;
  EXPECT_FALSE(parse_spec(text, &error).has_value());
  EXPECT_NE(error.find("series"), std::string::npos);
}

TEST(SpecFormat, RejectsMissingAndMalformedNumericLines) {
  const std::string text = to_text(tiny_spec());
  // Drop the seed line entirely.
  std::string dropped = text;
  const auto seed_at = dropped.find("seed ");
  dropped.erase(seed_at, dropped.find('\n', seed_at) - seed_at + 1);
  std::string error;
  EXPECT_FALSE(parse_spec(dropped, &error).has_value());
  // Corrupt the value instead.
  std::string corrupted = text;
  corrupted.replace(corrupted.find("seed 77"), 7, "seed 7x");
  EXPECT_FALSE(parse_spec(corrupted, &error).has_value());
  EXPECT_NE(error.find("seed"), std::string::npos);
}

TEST(SpecFormat, RejectsTruncatedParamsPayload) {
  CampaignSpec spec = tiny_spec();
  spec.params_text = "twenty bytes of text";
  std::string text = to_text(spec);
  // Lie about the payload length: claim more bytes than follow.
  text.replace(text.find("params 20"), 9, "params 99");
  std::string error;
  EXPECT_FALSE(parse_spec(text, &error).has_value());
}

TEST(SpecFormat, RejectsMissingEndSentinel) {
  std::string text = to_text(tiny_spec());
  text.erase(text.rfind("end\n"));
  std::string error;
  EXPECT_FALSE(parse_spec(text, &error).has_value());
  EXPECT_NE(error.find("sentinel"), std::string::npos);
}

TEST(SpecFormat, RejectsVerifyPruneOutsideUnitInterval) {
  std::string text = to_text(tiny_spec());
  text.replace(text.find("verify-prune 0"), 14, "verify-prune 2");
  EXPECT_FALSE(parse_spec(text).has_value());
}

TEST(SpecOptions, MapsFieldsAndBoundsRecovery) {
  CampaignSpec spec = tiny_spec();
  spec.recovery = 3;
  const auto options = spec_options(spec);
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->seed, 77u);
  EXPECT_EQ(options->test_case_count, 2u);
  EXPECT_EQ(options->observation_ms, 2000u);
  EXPECT_EQ(options->recovery, core::RecoveryPolicy::rate_limit);

  spec.recovery = 4;
  std::string error;
  EXPECT_FALSE(spec_options(spec, &error).has_value());
  EXPECT_NE(error.find("recovery"), std::string::npos);
}

TEST(SpecOptions, RejectsZeroScales) {
  CampaignSpec spec = tiny_spec();
  spec.cases = 0;
  EXPECT_FALSE(spec_options(spec).has_value());
}

TEST(SpecOptions, RejectsGarbageParamsPayload) {
  CampaignSpec spec = tiny_spec();
  spec.params_text = "not a parameter set";
  std::string error;
  EXPECT_FALSE(spec_options(spec, &error).has_value());
  EXPECT_NE(error.find("parameter"), std::string::npos);
}

TEST(SpecErrorRange, DefaultsToFullListAndValidatesSubsets) {
  CampaignSpec spec = tiny_spec();
  EXPECT_EQ(spec_error_range(spec), (fi::ShardRange{0, fi::e1_error_count()}));
  spec.error_begin = 16;
  spec.error_end = 32;
  EXPECT_EQ(spec_error_range(spec), (fi::ShardRange{16, 32}));
  spec.error_end = 113;
  EXPECT_FALSE(spec_error_range(spec).has_value());
  spec.series = "e2";
  spec.ram = 20;
  spec.stack = 10;
  spec.error_end = 30;
  EXPECT_EQ(spec_error_range(spec), (fi::ShardRange{16, 30}));
}

TEST(ResultEnvelope, RoundTripsStatsKeyAndBlob) {
  SubmitStats stats;
  stats.shards = 7;
  stats.hits = 3;
  stats.misses = 4;
  stats.peer_shards = 1;
  stats.runs = 1792;
  const std::string blob{"blob with\nnewlines and \0 bytes", 30};
  const std::string payload = result_payload(stats, "the key", blob);

  SubmitStats out_stats;
  std::string out_key, out_blob, error;
  ASSERT_TRUE(parse_result_payload(payload, &out_stats, &out_key, &out_blob, &error)) << error;
  EXPECT_EQ(out_key, "the key");
  EXPECT_EQ(out_blob, blob);
  EXPECT_EQ(out_stats.shards, 7u);
  EXPECT_EQ(out_stats.hits, 3u);
  EXPECT_EQ(out_stats.misses, 4u);
  EXPECT_EQ(out_stats.peer_shards, 1u);
  EXPECT_EQ(out_stats.runs, 1792u);
}

TEST(ResultEnvelope, RejectsBlobLengthLie) {
  std::string payload = result_payload(SubmitStats{}, "key", "twenty bytes of blob");
  payload.replace(payload.find("blob 20"), 7, "blob 10");
  SubmitStats stats;
  std::string key, blob, error;
  EXPECT_FALSE(parse_result_payload(payload, &stats, &key, &blob, &error));
}

TEST(ShardExec, RoundTripsShardAndSpec) {
  const CampaignSpec spec = tiny_spec();
  const std::string payload = shard_exec_payload(spec, {16, 32});
  CampaignSpec out_spec;
  fi::ShardRange out_shard;
  std::string error;
  ASSERT_TRUE(parse_shard_exec(payload, &out_spec, &out_shard, &error)) << error;
  EXPECT_EQ(out_spec, spec);
  EXPECT_EQ(out_shard, (fi::ShardRange{16, 32}));
}

TEST(ShardExec, RejectsMissingShardLine) {
  CampaignSpec spec;
  fi::ShardRange shard;
  std::string error;
  EXPECT_FALSE(parse_shard_exec(to_text(tiny_spec()), &spec, &shard, &error));
  EXPECT_NE(error.find("shard"), std::string::npos);
}

}  // namespace
}  // namespace easel::svc
