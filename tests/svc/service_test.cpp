// CampaignService in-process: submissions are byte-identical to the
// library engines at any shard count, warm resubmissions are all store
// hits, and campaigns whose decompositions overlap — a full sweep and a
// per-signal subset, a pruned and an unpruned run — share shard blobs.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "util/net.hpp"

namespace easel::svc {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.series = "e1";
  spec.seed = 77;
  spec.cases = 2;
  spec.obs_ms = 2000;
  return spec;
}

fi::CampaignOptions tiny_options() {
  fi::CampaignOptions options;
  options.test_case_count = 2;
  options.observation_ms = 2000;
  options.seed = 77;
  return options;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "service_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CampaignService make_service(ServiceConfig config = {}) {
    return CampaignService{dir_, std::move(config)};
  }

  static std::string reference_e1_blob() {
    static const std::string blob = [] {
      const auto results = fi::run_e1(tiny_options());
      std::ostringstream out;
      fi::save_e1(results, out, fi::e1_shard_key(tiny_options(), {0, fi::e1_error_count()}));
      return out.str();
    }();
    return blob;
  }

  std::string dir_;
};

TEST_F(ServiceTest, SubmitMatchesInProcessEngineAtShardCountOne) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.shards = 1;
  std::string error;
  const auto result = service.submit(spec, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->blob, reference_e1_blob());
  EXPECT_EQ(result->stats.shards, 1u);
  EXPECT_EQ(result->stats.hits, 0u);
  EXPECT_EQ(result->stats.misses, 1u);
  EXPECT_EQ(result->stats.runs, fi::run_e1(tiny_options()).runs);
}

TEST_F(ServiceTest, SubmitMatchesInProcessEngineAtShardCountSeven) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.shards = 7;
  std::string error;
  const auto result = service.submit(spec, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->blob, reference_e1_blob());
  EXPECT_EQ(result->stats.shards, 7u);
  EXPECT_EQ(result->stats.misses, 7u);
}

TEST_F(ServiceTest, WarmResubmissionIsAllHits) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.shards = 3;
  std::string error;
  const auto cold = service.submit(spec, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  EXPECT_EQ(cold->stats.misses, 3u);
  const auto warm = service.submit(spec, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_EQ(warm->stats.hits, 3u);
  EXPECT_EQ(warm->stats.misses, 0u);
  EXPECT_EQ(warm->blob, cold->blob);
}

TEST_F(ServiceTest, SubsetCampaignHitsShardsWarmedByTheFullCampaign) {
  CampaignService service = make_service();
  CampaignSpec full = tiny_spec();
  full.shards = 7;  // 16-error slabs, aligned with per-signal subsets
  std::string error;
  ASSERT_TRUE(service.submit(full, &error).has_value()) << error;

  CampaignSpec subset = tiny_spec();
  subset.error_begin = 16;  // second signal's slab
  subset.error_end = 32;
  subset.shards = 1;
  const auto result = service.submit(subset, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stats.hits, 1u);
  EXPECT_EQ(result->stats.misses, 0u);
}

TEST_F(ServiceTest, PrunedAndUnprunedSubmissionsShareShards) {
  CampaignService service = make_service();
  CampaignSpec pruned = tiny_spec();
  pruned.shards = 3;
  std::string error;
  const auto first = service.submit(pruned, &error);
  ASSERT_TRUE(first.has_value()) << error;

  // Prune mode is result-invariant, so it is excluded from shard keys:
  // the unpruned resubmission must be served entirely from the store.
  CampaignSpec unpruned = pruned;
  unpruned.prune = false;
  const auto second = service.submit(unpruned, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(second->stats.hits, 3u);
  EXPECT_EQ(second->stats.misses, 0u);
  EXPECT_EQ(second->blob, first->blob);
}

TEST_F(ServiceTest, DifferentShardCountsYieldTheSameBytes) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.shards = 3;
  std::string error;
  const auto three = service.submit(spec, &error);
  ASSERT_TRUE(three.has_value()) << error;

  // A different topology re-executes (3-shard and 7-shard blobs don't
  // align) but must produce identical bytes.
  spec.shards = 7;
  const auto seven = service.submit(spec, &error);
  ASSERT_TRUE(seven.has_value()) << error;
  EXPECT_EQ(seven->blob, three->blob);
}

TEST_F(ServiceTest, E2SubmitMatchesInProcessEngine) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.series = "e2";
  spec.ram = 20;
  spec.stack = 10;
  spec.shards = 3;
  std::string error;
  const auto result = service.submit(spec, &error);
  ASSERT_TRUE(result.has_value()) << error;

  const auto reference = fi::run_e2(tiny_options(), 20, 10);
  std::ostringstream out;
  fi::save_e2(reference, out,
              fi::e2_shard_key(tiny_options(), 20, 10, {0, fi::e2_error_count(20, 10)}));
  EXPECT_EQ(result->blob, out.str());
  EXPECT_EQ(result->stats.runs, reference.runs);
}

TEST_F(ServiceTest, DefaultShardCountIsOneSlabPerSixteenErrors) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();  // shards = 0: daemon decides
  std::string error;
  const auto result = service.submit(spec, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stats.shards, fi::e1_error_count() / 16);
  EXPECT_EQ(result->blob, reference_e1_blob());
}

TEST_F(ServiceTest, RejectsInvalidSpecWithoutTouchingTheStore) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.error_end = 500;  // outside the E1 list
  std::string error;
  EXPECT_FALSE(service.submit(spec, &error).has_value());
  EXPECT_NE(error.find("error"), std::string::npos);
  EXPECT_EQ(service.store().stats().puts, 0u);
}

TEST_F(ServiceTest, ExecuteShardServesFromStoreOnSecondCall) {
  CampaignService service = make_service();
  const CampaignSpec spec = tiny_spec();
  std::string error;
  const auto cold = service.execute_shard(spec, {0, 16}, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  const auto warm = service.execute_shard(spec, {0, 16}, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_EQ(*cold, *warm);
  EXPECT_EQ(service.store().stats().hits, 1u);
}

TEST_F(ServiceTest, ExecuteShardRejectsRangeOutsideTheSpec) {
  CampaignService service = make_service();
  CampaignSpec spec = tiny_spec();
  spec.error_begin = 16;
  spec.error_end = 32;
  std::string error;
  EXPECT_FALSE(service.execute_shard(spec, {0, 16}, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos);
}

TEST_F(ServiceTest, UnreachablePeerFallsBackToLocalExecution) {
  // Bind-then-drop a listener so the peer port is guaranteed dead.
  std::uint16_t dead_port = 0;
  {
    auto listener = util::TcpListener::bind(0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  ServiceConfig config;
  config.peers.push_back({"127.0.0.1", dead_port});
  CampaignService service = make_service(std::move(config));
  CampaignSpec spec = tiny_spec();
  spec.shards = 3;
  std::string error;
  const auto result = service.submit(spec, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stats.peer_shards, 0u);  // all local fallbacks
  EXPECT_EQ(result->blob, reference_e1_blob());
}

}  // namespace
}  // namespace easel::svc
