// Trace recorder: ring retention, mode annotations, scheduler-probe
// install semantics, and end-to-end capture through the experiment rig.
#include <gtest/gtest.h>

#include "fi/experiment.hpp"
#include "fi/run_context.hpp"
#include "mem/address_space.hpp"
#include "rt/scheduler.hpp"
#include "trace/recorder.hpp"

namespace easel::trace {
namespace {

TEST(Recorder, DirectSamplingCapturesWordsAndAnalog) {
  mem::AddressSpace space{{64, 0}};
  Recorder recorder{{.capacity = 16, .label = "direct"}};
  recorder.add_word_channel("sig", space, 0, 7, ChannelKind::continuous);
  double analog_value = 1.5;
  recorder.add_analog_channel("plant", [&analog_value] { return analog_value; });
  for (std::uint64_t tick = 0; tick < 5; ++tick) {
    space.write_u16(0, static_cast<std::uint16_t>(tick * 10));
    analog_value += 0.5;
    recorder.on_tick(tick);
  }
  const Trace trace = recorder.snapshot();
  EXPECT_EQ(trace.label, "direct");
  EXPECT_EQ(trace.tick_count, 5u);
  ASSERT_EQ(trace.signals.size(), 2u);
  const SignalTrace* sig = trace.find("sig");
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->period_ms, 7u);
  EXPECT_EQ(sig->first_tick, 0u);
  EXPECT_EQ(sig->words, (std::vector<std::uint16_t>{0, 10, 20, 30, 40}));
  const SignalTrace* plant = trace.find("plant");
  ASSERT_NE(plant, nullptr);
  EXPECT_EQ(plant->kind, ChannelKind::analog);
  ASSERT_EQ(plant->analog.size(), 5u);
  EXPECT_DOUBLE_EQ(plant->analog.front(), 2.0);
  EXPECT_DOUBLE_EQ(plant->analog.back(), 4.0);
}

TEST(Recorder, BoundedCapacityKeepsNewestAndAdvancesFirstTick) {
  mem::AddressSpace space{{64, 0}};
  Recorder recorder{{.capacity = 4, .label = ""}};
  recorder.add_word_channel("sig", space, 0, 1, ChannelKind::continuous);
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    space.write_u16(0, static_cast<std::uint16_t>(100 + tick));
    recorder.on_tick(tick);
  }
  const Trace trace = recorder.snapshot();
  const SignalTrace* sig = trace.find("sig");
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->first_tick, 6u);  // 10 samples, capacity 4: ticks 6..9 remain
  EXPECT_EQ(sig->words, (std::vector<std::uint16_t>{106, 107, 108, 109}));
  EXPECT_EQ(trace.tick_count, 10u);
}

TEST(Recorder, ModeChangesBecomeAnnotations) {
  mem::AddressSpace space{{64, 0}};
  Recorder recorder;
  recorder.set_mode_channel(space, 4);
  const std::uint16_t modes[] = {0, 0, 1, 1, 0, 0};
  for (std::uint64_t tick = 0; tick < 6; ++tick) {
    space.write_u16(4, modes[tick]);
    recorder.on_tick(tick);
  }
  const Trace trace = recorder.snapshot();
  EXPECT_EQ(trace.initial_mode, 0u);
  ASSERT_EQ(trace.mode_changes.size(), 2u);
  EXPECT_EQ(trace.mode_changes[0], (ModeChange{2, 1}));
  EXPECT_EQ(trace.mode_changes[1], (ModeChange{4, 0}));
  EXPECT_EQ(trace.mode_at(1), 0u);
  EXPECT_EQ(trace.mode_at(3), 1u);
  EXPECT_EQ(trace.mode_at(5), 0u);
}

TEST(Recorder, ClearKeepsChannelsResetChannelsDropsThem) {
  mem::AddressSpace space{{64, 0}};
  Recorder recorder;
  recorder.add_word_channel("sig", space, 0, 1, ChannelKind::continuous);
  recorder.on_tick(0);
  EXPECT_EQ(recorder.ticks_seen(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.ticks_seen(), 0u);
  EXPECT_EQ(recorder.channel_count(), 1u);
  recorder.reset_channels();
  EXPECT_EQ(recorder.channel_count(), 0u);
}

TEST(Recorder, InstallReportsCompiledState) {
  rt::Scheduler scheduler;
  Recorder recorder;
  EXPECT_EQ(recorder.install(scheduler), Recorder::compiled_in());
  recorder.uninstall(scheduler);
}

TEST(Recorder, SchedulerProbeFiresEveryTick) {
  if (!Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  mem::AddressSpace space{{64, 0}};
  rt::Scheduler scheduler;
  Recorder recorder;
  recorder.add_word_channel("sig", space, 0, 1, ChannelKind::continuous);
  recorder.install(scheduler);
  for (int t = 0; t < 25; ++t) scheduler.tick();
  EXPECT_EQ(recorder.ticks_seen(), 25u);
  recorder.uninstall(scheduler);
  for (int t = 0; t < 5; ++t) scheduler.tick();
  EXPECT_EQ(recorder.ticks_seen(), 25u);  // no samples after uninstall
}

TEST(Recorder, RunCaptureSamplesEveryTickAndSeesEngagementModeChange) {
  if (!Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  Recorder recorder{{.capacity = 1u << 20, .label = "golden"}};
  fi::RunConfig config;
  config.observation_ms = 6000;
  config.trace = &recorder;
  fi::RunContext context;
  const fi::RunResult result = context.run(config);
  EXPECT_FALSE(result.detected);

  const Trace trace = recorder.snapshot();
  EXPECT_EQ(trace.label, "golden");
  EXPECT_EQ(trace.tick_count, 6000u);
  // Standard channel set: 7 signal words + 5 analog plant readouts.
  EXPECT_EQ(trace.signals.size(), 12u);
  for (const char* name : {"SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt",
                           "OutValue", "position_m", "velocity_mps"}) {
    const SignalTrace* channel = trace.find(name);
    ASSERT_NE(channel, nullptr) << name;
    EXPECT_EQ(channel->size(), 6000u) << name;
    EXPECT_EQ(channel->first_tick, 0u) << name;
  }
  EXPECT_EQ(trace.find("ms_slot_nbr")->kind, ChannelKind::discrete);
  EXPECT_EQ(trace.find("SetValue")->period_ms, 7u);
  EXPECT_EQ(trace.find("mscnt")->period_ms, 1u);

  // The aircraft engages the wire within the window: pre-charge (0) ->
  // braking (1) appears as exactly one mode annotation.
  EXPECT_EQ(trace.initial_mode, 0u);
  ASSERT_EQ(trace.mode_changes.size(), 1u);
  EXPECT_EQ(trace.mode_changes.front().mode, 1u);
  EXPECT_GT(trace.mode_changes.front().tick, 0u);

  // mscnt counts scheduler milliseconds: a strictly +1 staircase.
  const SignalTrace* mscnt = trace.find("mscnt");
  for (std::size_t k = 1; k < 100; ++k) {
    EXPECT_EQ(mscnt->words[k], mscnt->words[k - 1] + 1);
  }
}

TEST(Recorder, RunCaptureIsUninstalledAfterRun) {
  if (!Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  Recorder recorder;
  fi::RunConfig config;
  config.observation_ms = 1000;
  config.trace = &recorder;
  fi::RunContext context;
  (void)context.run(config);
  const std::uint64_t seen = recorder.ticks_seen();
  EXPECT_EQ(seen, 1000u);
  // A second run WITHOUT the recorder must not touch it.
  config.trace = nullptr;
  (void)context.run(config);
  EXPECT_EQ(recorder.ticks_seen(), seen);
}

}  // namespace
}  // namespace easel::trace
