// Binary trace format: round-trip fidelity and the defensive-load contract
// (wrong magic/version, truncation anywhere, corrupt counts all yield
// nullopt, never a partial trace).
#include <gtest/gtest.h>

#include <sstream>

#include "trace/format.hpp"

namespace easel::trace {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.label = "unit fixture";
  trace.tick_count = 10;
  trace.initial_mode = 0;
  trace.mode_changes = {{4, 1}, {8, 0}};

  SignalTrace words;
  words.name = "SetValue";
  words.kind = ChannelKind::continuous;
  words.period_ms = 7;
  words.words = {0, 100, 250, 400, 900, 1200, 1200, 1180, 1100, 1050};
  trace.signals.push_back(words);

  SignalTrace slot;
  slot.name = "ms_slot_nbr";
  slot.kind = ChannelKind::discrete;
  slot.period_ms = 1;
  slot.words = {0, 1, 2, 3, 4, 5, 6, 0, 1, 2};
  trace.signals.push_back(slot);

  SignalTrace analog;
  analog.name = "velocity_mps";
  analog.kind = ChannelKind::analog;
  analog.first_tick = 2;
  analog.analog = {60.0, 59.5, 58.75, 57.0};
  trace.signals.push_back(analog);
  return trace;
}

std::string saved_bytes(const Trace& trace) {
  std::ostringstream out;
  save(trace, out);
  return out.str();
}

TEST(TraceFormat, RoundTripIsExact) {
  const Trace original = sample_trace();
  std::stringstream stream;
  save(original, stream);
  const auto loaded = load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, original);
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
  Trace empty;
  std::stringstream stream;
  save(empty, stream);
  const auto loaded = load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, empty);
}

TEST(TraceFormat, RejectsWrongMagic) {
  std::string bytes = saved_bytes(sample_trace());
  bytes[0] = 'X';
  std::istringstream in{bytes};
  EXPECT_FALSE(load(in).has_value());
}

TEST(TraceFormat, RejectsUnsupportedVersion) {
  std::string bytes = saved_bytes(sample_trace());
  bytes[8] = static_cast<char>(kFormatVersion + 1);  // version u32 LE at offset 8
  std::istringstream in{bytes};
  EXPECT_FALSE(load(in).has_value());
}

TEST(TraceFormat, RejectsTruncationAtEveryPrefixLength) {
  const std::string bytes = saved_bytes(sample_trace());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in{bytes.substr(0, cut)};
    EXPECT_FALSE(load(in).has_value()) << "prefix of " << cut << " bytes loaded";
  }
}

TEST(TraceFormat, RejectsCorruptSentinel) {
  std::string bytes = saved_bytes(sample_trace());
  bytes[bytes.size() - 1] = '?';
  std::istringstream in{bytes};
  EXPECT_FALSE(load(in).has_value());
}

TEST(TraceFormat, RejectsNonIncreasingModeChangeTicks) {
  Trace trace = sample_trace();
  trace.mode_changes = {{8, 1}, {8, 0}};
  std::stringstream stream;
  save(trace, stream);
  EXPECT_FALSE(load(stream).has_value());
}

TEST(TraceFormat, FileRoundTripAndMissingFile) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "format_test_roundtrip.trace";
  ASSERT_TRUE(save(original, path));
  const auto loaded = load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, original);
  EXPECT_FALSE(load(path + ".does-not-exist").has_value());
}

TEST(TraceFormat, CsvHeaderRowsAndEmptyCells) {
  const Trace trace = sample_trace();
  const std::string csv = to_csv(trace, 1);
  std::istringstream lines{csv};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "tick,mode,SetValue,ms_slot_nbr,velocity_mps");
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, trace.tick_count);

  // Tick 0 predates the analog channel's first_tick = 2: empty last cell.
  std::istringstream again{csv};
  std::getline(again, line);
  std::getline(again, line);
  EXPECT_EQ(line, "0,0,0,0,");
  // Tick 4 is inside every channel and after the mode change to 1.
  std::getline(again, line);
  std::getline(again, line);
  std::getline(again, line);
  std::getline(again, line);
  EXPECT_EQ(line, "4,1,900,4,58.7500");
}

TEST(TraceFormat, CsvStrideSkipsRows) {
  const Trace trace = sample_trace();
  const std::string csv = to_csv(trace, 4);
  std::istringstream lines{csv};
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 1 + (trace.tick_count + 3) / 4);  // header + ticks 0,4,8
}

TEST(TraceFormat, ModeAtFollowsAnnotations) {
  const Trace trace = sample_trace();
  EXPECT_EQ(trace.mode_at(0), 0);
  EXPECT_EQ(trace.mode_at(3), 0);
  EXPECT_EQ(trace.mode_at(4), 1);
  EXPECT_EQ(trace.mode_at(7), 1);
  EXPECT_EQ(trace.mode_at(8), 0);
  EXPECT_EQ(trace.mode_at(10'000), 0);
}

}  // namespace
}  // namespace easel::trace
