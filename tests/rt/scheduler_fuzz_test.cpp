// Robustness fuzz: random corruption anywhere in the image must never make
// the kernel substrate throw or violate its accounting invariants.
#include <gtest/gtest.h>

#include "rt/scheduler.hpp"
#include "util/rng.hpp"

namespace easel::rt {
namespace {

class NullModule final : public Module {
 public:
  explicit NullModule(std::string_view name) : name_{name} {}
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  void execute() override { ++runs; }
  std::uint64_t runs = 0;

 private:
  std::string_view name_;
};

TEST(SchedulerFuzz, RandomImageCorruptionNeverThrows) {
  util::Rng rng{0xf022};
  for (int trial = 0; trial < 50; ++trial) {
    mem::AddressSpace space;
    mem::Allocator alloc{space};
    TaskContext kernel{space, alloc, "EXEC", 0x8789, 16};
    TaskContext ctx_a{space, alloc, "A", 0x8111, 8};
    TaskContext ctx_b{space, alloc, "B", 0x8225, 24};
    TaskContext ctx_c{space, alloc, "C", 0x8339, 64};
    NullModule a{"A"}, b{"B"}, c{"C"};

    Scheduler sched;
    sched.add_every_tick(a, ctx_a);
    sched.add_periodic(b, ctx_b, static_cast<std::uint32_t>(rng.uniform_u64(0, 6)));
    sched.set_background(c, ctx_c);
    sched.set_kernel_context(kernel);
    sched.boot();

    for (int tick = 0; tick < 500; ++tick) {
      if (tick % 10 == 0) {
        space.flip_bit(rng.uniform_u64(0, space.size() - 1),
                       static_cast<unsigned>(rng.uniform_u64(0, 7)));
      }
      ASSERT_NO_THROW(sched.tick()) << "trial " << trial << " tick " << tick;
    }

    // Accounting invariants hold regardless of corruption history.
    const auto& stats = sched.stats();
    EXPECT_LE(stats.dispatches, 500u * 3u);
    if (sched.halted()) {
      EXPECT_LE(stats.halt_tick, 500u);
    }
    EXPECT_EQ(sched.tick_count(), 500u);
  }
}

TEST(SchedulerFuzz, ModulesWritingThroughShiftedSpStayInImage) {
  // A module whose sp was corrupted onto another context keeps working on
  // in-image bytes; the dispatcher never lets an out-of-image sp execute.
  util::Rng rng{0xabc};
  mem::AddressSpace space;
  mem::Allocator alloc{space};
  TaskContext ctx_a{space, alloc, "A", 0x8111, 16};
  TaskContext ctx_b{space, alloc, "B", 0x8225, 16};

  class WriterModule final : public Module {
   public:
    explicit WriterModule(TaskContext& ctx) : ctx_{&ctx} {}
    [[nodiscard]] std::string_view name() const noexcept override { return "W"; }
    void execute() override { ctx_->set_local_u16(0, 0xdead); }
    TaskContext* ctx_;
  };
  WriterModule writer{ctx_a};

  Scheduler sched;
  sched.add_every_tick(writer, ctx_a);
  sched.boot();
  ctx_b.initialize();

  for (int tick = 0; tick < 200; ++tick) {
    // Randomly smear A's sp around the image.
    space.write_u16(ctx_a.base_address() + 2,
                    static_cast<std::uint16_t>(rng.uniform_u64(0, 0xffff)));
    ASSERT_NO_THROW(sched.tick());
  }
}

}  // namespace
}  // namespace easel::rt
