#include "rt/task_context.hpp"

#include <gtest/gtest.h>

namespace easel::rt {
namespace {

struct Fixture {
  mem::AddressSpace space;
  mem::Allocator alloc{space};
};

TEST(TaskContext, InitializeWritesHeader) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  EXPECT_EQ(f.space.read_u16(ctx.base_address()), 0x8111);
  EXPECT_EQ(f.space.read_u16(ctx.base_address() + 2), ctx.base_address() + 4);
  EXPECT_EQ(ctx.health(), ContextHealth::ok);
  EXPECT_EQ(ctx.size_bytes(), 20u);
  EXPECT_EQ(ctx.task_name(), "T");
}

TEST(TaskContext, LocalsRoundTrip) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  ctx.set_local_u16(0, 42);
  ctx.set_local_i16(2, -7);
  ctx.set_local_i32(4, -100000);
  EXPECT_EQ(ctx.local_u16(0), 42u);
  EXPECT_EQ(ctx.local_i16(2), -7);
  EXPECT_EQ(ctx.local_i32(4), -100000);
}

TEST(TaskContext, LocalsLiveInStackRegion) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  EXPECT_EQ(f.space.region_of(ctx.base_address()), mem::Region::stack);
}

TEST(TaskContext, CorruptedEntryDecodesDeterministically) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  // Decode classes by entry % 8: {0,3,6} skip, {2,5} wrong vector, rest crash.
  f.space.write_u16(ctx.base_address(), 0x8110);  // % 8 == 0
  EXPECT_EQ(ctx.health(), ContextHealth::skip);
  f.space.write_u16(ctx.base_address(), 0x8112);  // % 8 == 2
  EXPECT_EQ(ctx.health(), ContextHealth::wrong_vector);
  f.space.write_u16(ctx.base_address(), 0x8109);  // % 8 == 1
  EXPECT_EQ(ctx.health(), ContextHealth::crash);
  // Same corruption, same verdict.
  EXPECT_EQ(ctx.health(), ContextHealth::crash);
}

TEST(TaskContext, ShiftedSpRedirectsLocals) {
  Fixture f;
  TaskContext a{f.space, f.alloc, "A", 0x8111, 16};
  TaskContext b{f.space, f.alloc, "B", 0x8225, 16};
  a.initialize();
  b.initialize();
  // Shift A's sp onto B's locals: A now reads/writes B's working set.
  f.space.write_u16(a.base_address() + 2,
                    static_cast<std::uint16_t>(b.base_address() + 4));
  EXPECT_EQ(a.health(), ContextHealth::ok);  // still addressable
  b.set_local_u16(0, 77);
  EXPECT_EQ(a.local_u16(0), 77u);
  a.set_local_u16(0, 78);
  EXPECT_EQ(b.local_u16(0), 78u);
}

TEST(TaskContext, OutOfImageSpIsACrash) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  f.space.write_u16(ctx.base_address() + 2, 0xfff0);  // far outside the image
  EXPECT_EQ(ctx.health(), ContextHealth::crash);
  // Near the end but with the locals spilling out: also a crash.
  f.space.write_u16(ctx.base_address() + 2,
                    static_cast<std::uint16_t>(f.space.size() - 8));
  EXPECT_EQ(ctx.health(), ContextHealth::crash);
}

TEST(TaskContext, WrongVectorIndexStable) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  f.space.write_u16(ctx.base_address(), 0x8112);
  const std::size_t idx = ctx.wrong_vector_index(6);
  EXPECT_LT(idx, 6u);
  EXPECT_EQ(ctx.wrong_vector_index(6), idx);
  EXPECT_EQ(ctx.wrong_vector_index(0), 0u);
}

TEST(TaskContext, ReinitializeRepairsCorruption) {
  Fixture f;
  TaskContext ctx{f.space, f.alloc, "T", 0x8111, 16};
  ctx.initialize();
  f.space.write_u16(ctx.base_address(), 0xdead);
  f.space.write_u16(ctx.base_address() + 2, 0xbeef);
  ctx.initialize();
  EXPECT_EQ(ctx.health(), ContextHealth::ok);
}

}  // namespace
}  // namespace easel::rt
