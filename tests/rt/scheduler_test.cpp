#include "rt/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace easel::rt {
namespace {

/// Records its invocations into a shared log.
class ProbeModule final : public Module {
 public:
  ProbeModule(std::string name, std::vector<std::string>& log)
      : name_{std::move(name)}, log_{&log} {}
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  void execute() override { log_->push_back(name_); }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

struct Fixture {
  mem::AddressSpace space;
  mem::Allocator alloc{space};
  std::vector<std::string> log;

  TaskContext make_ctx(const char* name, std::uint16_t token) {
    return TaskContext{space, alloc, name, token, 8};
  }
};

std::size_t count(const std::vector<std::string>& log, const std::string& name) {
  std::size_t n = 0;
  for (const auto& entry : log) n += entry == name ? 1u : 0u;
  return n;
}

TEST(Scheduler, EveryTickModulesRunEachTick) {
  Fixture f;
  auto ctx = f.make_ctx("A", 0x8111);
  ProbeModule a{"A", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx);
  sched.boot();
  for (int i = 0; i < 21; ++i) sched.tick();
  EXPECT_EQ(count(f.log, "A"), 21u);
  EXPECT_EQ(sched.stats().dispatches, 21u);
}

TEST(Scheduler, PeriodicModulesRunOncePerFrame) {
  Fixture f;
  auto ctx = f.make_ctx("P", 0x8111);
  ProbeModule p{"P", f.log};
  Scheduler sched;
  sched.add_periodic(p, ctx, 3);
  sched.boot();
  for (int i = 0; i < 28; ++i) sched.tick();  // 4 frames
  EXPECT_EQ(count(f.log, "P"), 4u);
}

TEST(Scheduler, BackgroundRunsAfterPeriodicWork) {
  Fixture f;
  auto ctx_p = f.make_ctx("P", 0x8111);
  auto ctx_b = f.make_ctx("B", 0x8225);
  ProbeModule p{"P", f.log};
  ProbeModule b{"B", f.log};
  Scheduler sched;
  sched.add_periodic(p, ctx_p, 0);
  sched.set_background(b, ctx_b);
  sched.boot();
  sched.tick();  // slot 0
  ASSERT_EQ(f.log.size(), 2u);
  EXPECT_EQ(f.log[0], "P");
  EXPECT_EQ(f.log[1], "B");
}

TEST(Scheduler, SlotSourceSelectsPeriodicList) {
  Fixture f;
  auto ctx = f.make_ctx("P", 0x8111);
  ProbeModule p{"P", f.log};
  Scheduler sched;
  sched.add_periodic(p, ctx, 5);
  std::uint32_t slot = 0;
  sched.set_slot_source([&slot] { return slot; });
  sched.boot();
  sched.tick();
  EXPECT_TRUE(f.log.empty());
  slot = 5;
  sched.tick();
  EXPECT_EQ(count(f.log, "P"), 1u);
  slot = 5 + 7;  // out-of-range values fold into [0, 7)
  sched.tick();
  EXPECT_EQ(count(f.log, "P"), 2u);
}

TEST(Scheduler, InvalidSlotRejected) {
  Fixture f;
  auto ctx = f.make_ctx("P", 0x8111);
  ProbeModule p{"P", f.log};
  Scheduler sched;
  EXPECT_THROW(sched.add_periodic(p, ctx, 7), std::out_of_range);
}

TEST(Scheduler, SkipSuppressesOneTask) {
  Fixture f;
  auto ctx_a = f.make_ctx("A", 0x8111);
  auto ctx_b = f.make_ctx("B", 0x8225);
  ProbeModule a{"A", f.log};
  ProbeModule b{"B", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx_a);
  sched.add_every_tick(b, ctx_b);
  sched.boot();
  f.space.write_u16(ctx_a.base_address(), 0x8110);  // decode: skip
  for (int i = 0; i < 5; ++i) sched.tick();
  EXPECT_EQ(count(f.log, "A"), 0u);
  EXPECT_EQ(count(f.log, "B"), 5u);
  EXPECT_EQ(sched.stats().skips, 5u);
  EXPECT_FALSE(sched.halted());
}

TEST(Scheduler, WrongVectorRunsAnotherRoutine) {
  Fixture f;
  auto ctx_a = f.make_ctx("A", 0x8111);
  auto ctx_b = f.make_ctx("B", 0x8225);
  ProbeModule a{"A", f.log};
  ProbeModule b{"B", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx_a);
  sched.add_every_tick(b, ctx_b);
  sched.boot();
  f.space.write_u16(ctx_a.base_address(), 0x8112);  // decode: wrong vector
  sched.tick();
  EXPECT_EQ(count(f.log, "A"), 0u);
  // B ran for itself, and possibly again as A's wrong vector.
  EXPECT_GE(count(f.log, "B"), 1u);
  EXPECT_EQ(sched.stats().wrong_vectors, 1u);
}

TEST(Scheduler, CrashHaltsNodePermanently) {
  Fixture f;
  auto ctx_a = f.make_ctx("A", 0x8111);
  auto ctx_b = f.make_ctx("B", 0x8225);
  ProbeModule a{"A", f.log};
  ProbeModule b{"B", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx_a);
  sched.add_every_tick(b, ctx_b);
  sched.boot();
  sched.tick();
  f.space.write_u16(ctx_a.base_address(), 0x8109);  // decode: crash
  sched.tick();
  const std::size_t b_runs = count(f.log, "B");
  for (int i = 0; i < 10; ++i) sched.tick();
  EXPECT_TRUE(sched.halted());
  EXPECT_EQ(count(f.log, "B"), b_runs);          // nothing runs after the halt
  EXPECT_EQ(sched.stats().halt_tick, 1u);
  EXPECT_EQ(sched.tick_count(), 12u);            // time still advances
}

TEST(Scheduler, KernelContextCorruptionHalts) {
  Fixture f;
  auto kernel = f.make_ctx("EXEC", 0x8789);
  auto ctx = f.make_ctx("A", 0x8111);
  ProbeModule a{"A", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx);
  sched.set_kernel_context(kernel);
  sched.boot();
  sched.tick();
  EXPECT_EQ(count(f.log, "A"), 1u);
  f.space.write_u16(kernel.base_address(), 0x0000);  // any corruption
  sched.tick();
  EXPECT_TRUE(sched.halted());
  EXPECT_EQ(count(f.log, "A"), 1u);
}

TEST(Scheduler, BootResetsStateAndRepairsContexts) {
  Fixture f;
  auto ctx = f.make_ctx("A", 0x8111);
  ProbeModule a{"A", f.log};
  Scheduler sched;
  sched.add_every_tick(a, ctx);
  sched.boot();
  f.space.write_u16(ctx.base_address(), 0x8109);
  sched.tick();
  EXPECT_TRUE(sched.halted());
  sched.boot();
  EXPECT_FALSE(sched.halted());
  EXPECT_EQ(sched.tick_count(), 0u);
  sched.tick();
  EXPECT_EQ(count(f.log, "A"), 1u);
}

TEST(Scheduler, CurrentSlotCyclesModulo7) {
  Scheduler sched;
  sched.boot();
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(sched.current_slot(), static_cast<std::uint32_t>(i % 7));
    sched.tick();
  }
}

}  // namespace
}  // namespace easel::rt
