#include "arrestor/inventory.hpp"

#include <gtest/gtest.h>

#include "arrestor/assertions.hpp"

namespace easel::arrestor {
namespace {

TEST(Inventory, MatchesPaperCounts) {
  const core::SignalInventory inv = build_inventory();
  // Paper §3.2: 7 of 24 signals are service-critical.
  EXPECT_EQ(inv.signals().size(), 24u);
  EXPECT_EQ(inv.service_critical().size(), 7u);
}

TEST(Inventory, ProcessStepsComplete) {
  EXPECT_TRUE(build_inventory().unfinished().empty());
}

TEST(Inventory, Table4RowsMatchPaper) {
  const core::SignalInventory inv = build_inventory();
  struct Row {
    const char* name;
    const char* producer;
    const char* consumer;
    const char* location;
    core::SignalClass cls;
  };
  const Row expected[] = {
      {"SetValue", "CALC", "V_REG", "V_REG", core::SignalClass::continuous_random},
      {"IsValue", "PRES_S", "V_REG", "V_REG", core::SignalClass::continuous_random},
      {"i", "CALC", "CALC", "CALC", core::SignalClass::continuous_dynamic_monotonic},
      {"pulscnt", "DIST_S", "CALC", "DIST_S",
       core::SignalClass::continuous_dynamic_monotonic},
      {"ms_slot_nbr", "CLOCK", "CLOCK", "CLOCK",
       core::SignalClass::discrete_sequential_linear},
      {"mscnt", "CLOCK", "CALC", "CLOCK", core::SignalClass::continuous_static_monotonic},
      {"OutValue", "V_REG", "PRES_A", "PRES_A", core::SignalClass::continuous_random},
  };
  for (const Row& row : expected) {
    const core::SignalDecl& decl = inv.find(row.name);
    EXPECT_TRUE(decl.service_critical) << row.name;
    EXPECT_EQ(decl.producer, row.producer) << row.name;
    EXPECT_EQ(decl.consumer, row.consumer) << row.name;
    EXPECT_EQ(decl.test_location, row.location) << row.name;
    ASSERT_TRUE(decl.cls.has_value()) << row.name;
    EXPECT_EQ(*decl.cls, row.cls) << row.name;
  }
}

TEST(Inventory, ClassificationAgreesWithRomParameters) {
  // The inventory (step 5) and the deployed assertion bank (step 8) must
  // agree on every signal's class.
  const core::SignalInventory inv = build_inventory();
  for (std::size_t s = 0; s < kMonitoredSignalCount; ++s) {
    const auto signal = static_cast<MonitoredSignal>(s);
    const core::SignalDecl& decl = inv.find(to_string(signal));
    ASSERT_TRUE(decl.cls.has_value());
    EXPECT_EQ(*decl.cls, rom_signal_class(signal)) << to_string(signal);
  }
}

TEST(Inventory, PathwaysCoverEveryInput) {
  const core::SignalInventory inv = build_inventory();
  for (const auto& signal : inv.signals()) {
    if (signal.role != core::SignalRole::input) continue;
    bool covered = false;
    for (const auto& pathway : inv.pathways()) {
      for (const auto& name : pathway.signals) covered |= name == signal.name;
    }
    EXPECT_TRUE(covered) << "input " << signal.name << " not on any pathway";
  }
}

TEST(Inventory, Table4Renders) {
  const std::string table = build_inventory().render_table4();
  EXPECT_NE(table.find("SetValue"), std::string::npos);
  EXPECT_NE(table.find("Co/Mo/St"), std::string::npos);
  EXPECT_NE(table.find("Di/Se/Li"), std::string::npos);
  // Non-critical signals are not listed.
  EXPECT_EQ(table.find("pid_integral_m"), std::string::npos);
}

}  // namespace
}  // namespace easel::arrestor
