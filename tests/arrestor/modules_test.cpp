// Unit-level behaviour of the master node's software modules, driven tick
// by tick through the real node assembly.
#include <gtest/gtest.h>

#include "arrestor/master_node.hpp"
#include "core/detection_bus.hpp"
#include "sim/environment.hpp"

namespace easel::arrestor {
namespace {

class ModulesTest : public ::testing::Test {
 protected:
  void run_ms(std::uint64_t n) {
    for (std::uint64_t k = 0; k < n; ++k) {
      bus_.set_time_ms(now_++);
      master_.tick();
      env_.step_1ms();
    }
  }

  sim::TestCase test_case_{14000.0, 60.0};
  sim::Environment env_{test_case_, util::Rng{0x5eed}};
  core::DetectionBus bus_;
  MasterNode master_{env_, bus_, kAllAssertions};
  std::uint64_t now_ = 0;
};

TEST_F(ModulesTest, ClockIncrementsEveryMillisecond) {
  run_ms(123);
  EXPECT_EQ(master_.signals().mscnt.get(), 123u);
}

TEST_F(ModulesTest, SlotNumberCyclesThroughSeven) {
  std::uint16_t last = master_.signals().ms_slot_nbr.get();
  for (int k = 0; k < 30; ++k) {
    run_ms(1);
    const std::uint16_t slot = master_.signals().ms_slot_nbr.get();
    EXPECT_EQ(slot, (last + 1) % 7);
    last = slot;
  }
}

TEST_F(ModulesTest, SchedulerDispatchFollowsRamSlotNumber) {
  // Force the RAM slot number to V_REG's slot and verify V_REG runs on the
  // next tick even though the hardware tick count says otherwise.
  run_ms(50);
  const std::uint16_t out_before = master_.signals().out_value.get();
  const std::int32_t integral_before = master_.signals().pid_integral.get();
  // Set slot so that CLOCK increments it onto kSlotVReg this tick.
  master_.signals().ms_slot_nbr.set((kSlotVReg + 7 - 1) % 7);
  run_ms(1);
  // V_REG recomputed: the integral accumulates every V_REG pass during
  // engagement (error is nonzero while pressure builds).
  const bool v_reg_ran = master_.signals().pid_integral.get() != integral_before ||
                         master_.signals().out_value.get() != out_before;
  EXPECT_TRUE(v_reg_ran);
}

TEST_F(ModulesTest, DistSAccumulatesPulses) {
  run_ms(2000);
  const std::uint16_t pulses = master_.signals().pulscnt.get();
  EXPECT_GT(pulses, 0u);
  EXPECT_NEAR(pulses, env_.position_m() * 100.0, 15.0);
  // The latch is one tick old (DIST_S runs before the physics step).
  EXPECT_NEAR(master_.signals().dist_last_hw.get(),
              static_cast<double>(static_cast<std::uint16_t>(env_.rotation_pulses())), 12.0);
}

TEST_F(ModulesTest, CalcEngagesAtThreshold) {
  EXPECT_EQ(master_.calc_frame().local_u16(CalcModule::Locals::engaged), 0u);
  run_ms(40);  // 60 m/s: 0.5 m after ~8 ms
  EXPECT_EQ(master_.calc_frame().local_u16(CalcModule::Locals::engaged), 1u);
  EXPECT_EQ(master_.signals().diag_arrest_count.get(), 1u);
  EXPECT_EQ(master_.signals().diag_status_word.get(), 1u);
  // The checkpoint cache was filled from the RAM table.
  for (unsigned k = 0; k < kCheckpointCount; ++k) {
    EXPECT_EQ(master_.calc_frame().local_u16(CalcModule::Locals::cp_cache + 2 * k),
              (k + 1) * kCheckpointSpacingPulses);
  }
}

TEST_F(ModulesTest, CalcSlewsSetValueTowardTarget) {
  run_ms(40);
  const std::uint16_t early = master_.signals().set_value.get();
  EXPECT_LT(early, kPrechargePu);  // still ramping
  run_ms(100);
  EXPECT_EQ(master_.signals().set_value.get(), kPrechargePu);
  // Per-millisecond step is bounded by the slew limit.
  std::uint16_t prev = master_.signals().set_value.get();
  for (int k = 0; k < 50; ++k) {
    run_ms(1);
    const std::uint16_t current = master_.signals().set_value.get();
    EXPECT_LE(std::abs(static_cast<int>(current) - static_cast<int>(prev)),
              static_cast<int>(kSetValueSlewPuPerMs));
    prev = current;
  }
}

TEST_F(ModulesTest, CalcComputesVelocityAtFirstCheckpoint) {
  // Run until checkpoint 1 fires (40 m).
  while (master_.signals().checkpoint_i.get() == 0) run_ms(10);
  const std::uint16_t v_est = master_.calc_frame().local_u16(CalcModule::Locals::v_est);
  // Average segment velocity in cm/s, slightly below 60 m/s due to braking.
  EXPECT_GT(v_est, 5000u);
  EXPECT_LE(v_est, 6100u);
  EXPECT_EQ(master_.signals().diag_engage_velocity.get(), v_est / 100);
  // And the set-point target moved off the pre-charge.
  EXPECT_GT(master_.signals().sv_target.get(), kPrechargePu);
}

TEST_F(ModulesTest, VRegTracksAndTraces) {
  run_ms(3000);
  // PI regulator: output stays within the DAC range and near the set point
  // plus correction.
  const std::uint16_t out = master_.signals().out_value.get();
  EXPECT_LE(out, kOutValueMaxPu);
  EXPECT_GT(out, 0u);
  // The trace ring advanced (one record per V_REG frame).
  EXPECT_GT(master_.signals().trace_head.get(), 0u);
  EXPECT_LT(master_.signals().trace_head.get(), SignalMap::kTraceDepth);
}

TEST_F(ModulesTest, PresSWritesSensorReading) {
  run_ms(3000);
  // IsValue is at most one 7-ms frame old; while the set point slews, the
  // pressure can move a few tens of pu within a frame, plus sensor dither.
  EXPECT_NEAR(master_.signals().is_value.get(), env_.master_pressure_pu(), 60.0);
  EXPECT_GE(master_.signals().diag_max_pressure.get(), master_.signals().is_value.get());
}

TEST_F(ModulesTest, PresACommandsValve) {
  run_ms(3000);
  // The valve target equals the last OutValue written by PRES_A (within the
  // frame in flight).
  EXPECT_GT(env_.master_pressure_pu(), 100.0);
}

TEST_F(ModulesTest, CommBufferFollowsSetValue) {
  run_ms(3000);
  EXPECT_EQ(master_.signals().comm_tx_set_value.get(), master_.signals().set_value.get());
  EXPECT_GT(master_.signals().comm_tx_seq.get(), 0u);
}

TEST_F(ModulesTest, CheckpointIndexOutOfRangeStopsProgramSafely) {
  run_ms(2000);
  master_.signals().checkpoint_i.set(kCheckpointCount);  // as if all passed
  const std::uint16_t target = master_.signals().sv_target.get();
  run_ms(2000);
  EXPECT_EQ(master_.signals().sv_target.get(), target);  // no further updates
}

TEST_F(ModulesTest, DiagMaxSetValueMonotone) {
  run_ms(10000);
  EXPECT_GE(master_.signals().diag_max_set_value.get(), master_.signals().set_value.get());
}

}  // namespace
}  // namespace easel::arrestor
