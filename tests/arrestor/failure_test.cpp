#include "arrestor/failure.hpp"

#include <gtest/gtest.h>

namespace easel::arrestor {
namespace {

TEST(ForceLimitTable, GridCornersPositiveAndOrdered) {
  const ForceLimitTable& table = force_limits();
  for (std::size_t mi = 0; mi < ForceLimitTable::kMassPoints; ++mi) {
    for (std::size_t vi = 0; vi < ForceLimitTable::kVelocityPoints; ++vi) {
      EXPECT_GT(table.grid_value(mi, vi), 0.0);
      if (vi > 0) {
        EXPECT_GT(table.grid_value(mi, vi), table.grid_value(mi, vi - 1));
      }
      if (mi > 0) {
        EXPECT_GT(table.grid_value(mi, vi), table.grid_value(mi - 1, vi));
      }
    }
  }
}

TEST(ForceLimitTable, ExactAtGridPoints) {
  const ForceLimitTable& table = force_limits();
  const auto& masses = table.masses();
  const auto& velocities = table.velocities();
  for (std::size_t mi = 0; mi < masses.size(); ++mi) {
    for (std::size_t vi = 0; vi < velocities.size(); ++vi) {
      EXPECT_NEAR(table.limit_n(masses[mi], velocities[vi]), table.grid_value(mi, vi), 1e-6);
    }
  }
}

TEST(ForceLimitTable, InterpolatesBetweenPoints) {
  const ForceLimitTable& table = force_limits();
  const double mid = table.limit_n(10000.0, 45.0);
  EXPECT_GT(mid, table.limit_n(8000.0, 40.0));
  EXPECT_LT(mid, table.limit_n(12000.0, 50.0));
  // Bilinear: halfway in velocity at a grid mass is the average of the ends.
  const double at_45 = table.limit_n(8000.0, 45.0);
  EXPECT_NEAR(at_45, 0.5 * (table.grid_value(0, 0) + table.grid_value(0, 1)), 1e-6);
}

TEST(ForceLimitTable, ExtrapolatesBeyondGrid) {
  // Paper §3.3: limits for combinations outside the tabulated ones are
  // obtained by extrapolation.
  const ForceLimitTable& table = force_limits();
  const double beyond = table.limit_n(20000.0, 75.0);
  const double at_70 = table.limit_n(20000.0, 70.0);
  const double at_60 = table.limit_n(20000.0, 60.0);
  EXPECT_NEAR(beyond, at_70 + 0.5 * (at_70 - at_60), 1e-6);  // linear continuation
  EXPECT_GT(table.limit_n(22000.0, 50.0), table.limit_n(20000.0, 50.0));
  EXPECT_LT(table.limit_n(6000.0, 50.0), table.limit_n(8000.0, 50.0));
}

TEST(ForceLimitTable, EnvelopeClearsNominalPeakForces) {
  // Nominal peaks measured in the calibration sweep stay ~15 % or more
  // under the limit for the hardest corner (light-fast).
  EXPECT_GT(force_limits().limit_n(8000.0, 70.0), 1.15 * 193100.0);
}

class ClassifierTest : public ::testing::Test {
 protected:
  sim::TestCase test_case_{12000.0, 60.0};
  sim::Environment env_{test_case_, util::Rng{3}};
  FailureClassifier classifier_{test_case_};
};

TEST_F(ClassifierTest, CleanCoastHasNoFailureUntilOverrun) {
  for (std::uint64_t t = 0; t < 5000; ++t) {
    env_.step_1ms();
    classifier_.sample(env_, t);
  }
  // 5 s at 60 m/s = 300 m: not yet past the runway.
  EXPECT_FALSE(classifier_.failed());
  for (std::uint64_t t = 5000; t < 7000; ++t) {
    env_.step_1ms();
    classifier_.sample(env_, t);
  }
  EXPECT_TRUE(classifier_.failed());
  EXPECT_EQ(classifier_.kind(), FailureKind::overrun);
  EXPECT_GE(classifier_.failure_time_ms(), 5000u);
}

TEST_F(ClassifierTest, RetardationViolation) {
  // For a light, fast aircraft m*2.8g sits below Fmax, so slamming both
  // valves to full scale trips the retardation constraint first.
  const sim::TestCase light{8000.0, 70.0};
  sim::Environment env{light, util::Rng{5}};
  FailureClassifier classifier{light};
  for (std::uint64_t t = 0; t < 2000 && !classifier.failed(); ++t) {
    env.command_master_valve(20000);
    env.command_slave_valve(20000);
    env.step_1ms();
    classifier.sample(env, t);
  }
  ASSERT_TRUE(classifier.failed());
  EXPECT_EQ(classifier.kind(), FailureKind::retardation);
  EXPECT_GT(classifier.peak_retardation_g(), 2.8);
}

TEST_F(ClassifierTest, ForceViolationForHeavyAircraft) {
  // A heavy aircraft keeps r below 2.8 g even at high force, so the force
  // constraint trips first.
  const sim::TestCase heavy{20000.0, 40.0};
  sim::Environment env{heavy, util::Rng{4}};
  FailureClassifier classifier{heavy};
  for (std::uint64_t t = 0; t < 3000 && !classifier.failed(); ++t) {
    env.command_master_valve(6000);
    env.command_slave_valve(6000);
    env.step_1ms();
    classifier.sample(env, t);
  }
  ASSERT_TRUE(classifier.failed());
  EXPECT_EQ(classifier.kind(), FailureKind::force);
  EXPECT_LT(classifier.peak_retardation_g(), 2.8);
}

TEST_F(ClassifierTest, FirstViolationLatched) {
  for (std::uint64_t t = 0; t < 4000; ++t) {
    env_.command_master_valve(20000);
    env_.command_slave_valve(20000);
    env_.step_1ms();
    classifier_.sample(env_, t);
  }
  // The force limit tripped first (12 t: Fmax < m * 2.8 g) and stays the
  // recorded kind even as retardation later violates too.
  EXPECT_EQ(classifier_.kind(), FailureKind::force);
  const auto first_ms = classifier_.failure_time_ms();
  classifier_.sample(env_, 4001);
  EXPECT_EQ(classifier_.failure_time_ms(), first_ms);
}

TEST_F(ClassifierTest, StopDetection) {
  for (std::uint64_t t = 0; t < 30000 && !classifier_.stopped(); ++t) {
    if (t % 7 == 0) {
      env_.command_master_valve(5000);
      env_.command_slave_valve(5000);
    }
    env_.step_1ms();
    classifier_.sample(env_, t);
  }
  EXPECT_TRUE(classifier_.stopped());
  EXPECT_GT(classifier_.stop_time_ms(), 0u);
  EXPECT_GT(classifier_.final_position_m(), 0.0);
  EXPECT_LT(classifier_.final_position_m(), 335.0);
}

TEST(FailureKindNames, Printable) {
  EXPECT_EQ(to_string(FailureKind::none), "none");
  EXPECT_NE(to_string(FailureKind::retardation).find("2.8"), std::string_view::npos);
  EXPECT_NE(to_string(FailureKind::force).find("Fmax"), std::string_view::npos);
  EXPECT_NE(to_string(FailureKind::overrun).find("335"), std::string_view::npos);
}

}  // namespace
}  // namespace easel::arrestor
