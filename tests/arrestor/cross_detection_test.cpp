// Pins the cross-detection structure of paper Table 7: an assertion on one
// signal catches errors injected into *another* signal once they propagate
// through the control loop — and the propagation paths are the ones the
// dataflow (Figure 5) predicts.
#include <gtest/gtest.h>

#include "fi/experiment.hpp"

namespace easel::arrestor {
namespace {

fi::RunResult run_one(MonitoredSignal injected, unsigned bit, EaMask version,
                      sim::TestCase test_case = {17000.0, 65.0}) {
  fi::RunConfig config;
  config.test_case = test_case;
  config.assertions = version;
  config.error = fi::make_e1_for_target()[static_cast<std::size_t>(injected) * 16 + bit];
  return fi::run_experiment(config);
}

TEST(CrossDetection, Ea1CatchesPulscntErrorsThroughCalc) {
  // pulscnt feeds CALC's checkpoint logic; a high-bit error mis-times the
  // program and the set point crosses the EA1 envelope (paper Table 7:
  // EA1 detects pulscnt errors at 29.8 %).
  const fi::RunResult r =
      run_one(MonitoredSignal::pulscnt, 15, ea_bit(MonitoredSignal::set_value));
  EXPECT_TRUE(r.detected);
}

TEST(CrossDetection, Ea2CatchesSetValueErrorsThroughTheLoop) {
  // A corrupted set point drives the regulator, the valve, and therefore
  // the measured pressure: EA2 on IsValue sees the transient (paper: EA2
  // detects SetValue errors at 31.3 %).
  const fi::RunResult r =
      run_one(MonitoredSignal::set_value, 14, ea_bit(MonitoredSignal::is_value));
  EXPECT_TRUE(r.detected);
}

TEST(CrossDetection, Ea7CatchesSetValueHighBits) {
  // OutValue = SetValue + correction: a bit-14 set-point error slams the
  // regulator output across EA7's band (paper: EA7 on SetValue, 44.3 %).
  const fi::RunResult r =
      run_one(MonitoredSignal::set_value, 14, ea_bit(MonitoredSignal::out_value));
  EXPECT_TRUE(r.detected);
}

TEST(CrossDetection, NoPathFromOutValueToPulscntAssertion) {
  // The reverse direction has no (fast) path: an OutValue error changes
  // pressure, which only modulates how quickly pulses accrue — always
  // within EA4's rate band.  (Paper Table 7: EA4 row/OutValue column and
  // EA4 column/OutValue row are blank or near zero.)
  const fi::RunResult r =
      run_one(MonitoredSignal::out_value, 13, ea_bit(MonitoredSignal::pulscnt));
  EXPECT_FALSE(r.detected);
}

TEST(CrossDetection, CountersAreSelfContained) {
  // mscnt errors cannot be caught by EA5 (ms_slot_nbr is maintained
  // independently); the slot cycle stays legal.
  const fi::RunResult r =
      run_one(MonitoredSignal::mscnt, 13, ea_bit(MonitoredSignal::ms_slot_nbr));
  EXPECT_FALSE(r.detected);
}

TEST(CrossDetection, MscntErrorsReachSetValueViaVelocityEstimate) {
  // CALC divides by a time delta taken from mscnt: a corrupted clock skews
  // the velocity estimate and the computed set point (paper: EA1 detects
  // mscnt errors at 12.3 %).  A bit-15 clock error makes dt wrap huge or
  // tiny, so the set point saturates across the envelope.
  const fi::RunResult r =
      run_one(MonitoredSignal::mscnt, 15, ea_bit(MonitoredSignal::set_value));
  EXPECT_TRUE(r.detected);
}

TEST(CrossDetection, AllVersionDetectsWhateverAnySingleVersionDoes) {
  // Spot-check the dominance property at the run level for a mixed bag.
  const struct {
    MonitoredSignal signal;
    unsigned bit;
  } probes[] = {{MonitoredSignal::set_value, 14}, {MonitoredSignal::pulscnt, 15},
                {MonitoredSignal::mscnt, 15},     {MonitoredSignal::is_value, 12},
                {MonitoredSignal::checkpoint, 2}, {MonitoredSignal::out_value, 15}};
  for (const auto& probe : probes) {
    bool any_single = false;
    for (std::size_t v = 0; v < 7; ++v) {
      any_single |= run_one(probe.signal, probe.bit,
                            ea_bit(static_cast<MonitoredSignal>(v)))
                        .detected;
    }
    const bool all_version = run_one(probe.signal, probe.bit, kAllAssertions).detected;
    if (any_single) {
      EXPECT_TRUE(all_version)
          << to_string(probe.signal) << " bit " << probe.bit;
    }
  }
}

}  // namespace
}  // namespace easel::arrestor
