#include "arrestor/signal_map.hpp"

#include <gtest/gtest.h>

#include <set>

namespace easel::arrestor {
namespace {

struct Fixture {
  mem::AddressSpace space;
  mem::Allocator alloc{space};
  SignalMap map{space, alloc};
};

TEST(SignalMap, FitsInsidePaperRam) {
  Fixture f;
  EXPECT_LE(f.map.ram_bytes_used(), 417u);
  EXPECT_GT(f.map.ram_bytes_used(), 250u);  // most of RAM is live state
}

TEST(SignalMap, MonitoredSignalsHaveDistinctWordAddresses) {
  Fixture f;
  std::set<std::size_t> addresses;
  for (std::size_t s = 0; s < kMonitoredSignalCount; ++s) {
    const std::size_t addr = f.map.signal_address(static_cast<MonitoredSignal>(s));
    EXPECT_EQ(f.space.region_of(addr), mem::Region::ram);
    EXPECT_EQ(addr % 2, 0u);
    addresses.insert(addr);
  }
  EXPECT_EQ(addresses.size(), kMonitoredSignalCount);
}

TEST(SignalMap, SignalAddressesMatchVars) {
  Fixture f;
  EXPECT_EQ(f.map.signal_address(MonitoredSignal::set_value), f.map.set_value.address());
  EXPECT_EQ(f.map.signal_address(MonitoredSignal::mscnt), f.map.mscnt.address());
  EXPECT_EQ(f.map.signal_address(MonitoredSignal::out_value), f.map.out_value.address());
}

TEST(SignalMap, BootValuesWriteCheckpointTable) {
  Fixture f;
  f.map.write_boot_values();
  for (unsigned k = 0; k < kCheckpointCount; ++k) {
    EXPECT_EQ(f.map.cp_pulse[k].get(), (k + 1) * kCheckpointSpacingPulses);
  }
  EXPECT_EQ(f.map.cfg_design_mass_kg10.get(), kDesignMassKg10);
  EXPECT_EQ(f.map.cfg_stop_target_m.get(), kStopTargetM);
  EXPECT_EQ(f.map.cfg_precharge_pu.get(), kPrechargePu);
  EXPECT_EQ(f.map.cfg_engage_pulses.get(), kEngageThresholdPulses);
}

TEST(SignalMap, BootWritesBanner) {
  Fixture f;
  f.map.write_boot_values();
  EXPECT_EQ(f.space.read_u8(f.map.banner_base), 'B');  // "BAK-12A ..."
}

TEST(SignalMap, MonitorStateSlotsAreWordAlignedPairs) {
  Fixture f;
  for (const auto& slot : f.map.monitor_state) {
    EXPECT_EQ(slot.prev.address() % 2, 0u);
    EXPECT_EQ(slot.flags.address(), slot.prev.address() + 2);
  }
}

TEST(SignalMap, EaNumberingMatchesTable6) {
  EXPECT_EQ(ea_number(MonitoredSignal::set_value), 1u);
  EXPECT_EQ(ea_number(MonitoredSignal::is_value), 2u);
  EXPECT_EQ(ea_number(MonitoredSignal::checkpoint), 3u);
  EXPECT_EQ(ea_number(MonitoredSignal::pulscnt), 4u);
  EXPECT_EQ(ea_number(MonitoredSignal::ms_slot_nbr), 5u);
  EXPECT_EQ(ea_number(MonitoredSignal::mscnt), 6u);
  EXPECT_EQ(ea_number(MonitoredSignal::out_value), 7u);
}

TEST(SignalMap, SignalNamesMatchPaper) {
  EXPECT_STREQ(to_string(MonitoredSignal::set_value), "SetValue");
  EXPECT_STREQ(to_string(MonitoredSignal::is_value), "IsValue");
  EXPECT_STREQ(to_string(MonitoredSignal::checkpoint), "i");
  EXPECT_STREQ(to_string(MonitoredSignal::pulscnt), "pulscnt");
  EXPECT_STREQ(to_string(MonitoredSignal::ms_slot_nbr), "ms_slot_nbr");
  EXPECT_STREQ(to_string(MonitoredSignal::mscnt), "mscnt");
  EXPECT_STREQ(to_string(MonitoredSignal::out_value), "OutValue");
}

TEST(SignalMap, LayoutIsDeterministic) {
  Fixture a, b;
  for (std::size_t s = 0; s < kMonitoredSignalCount; ++s) {
    EXPECT_EQ(a.map.signal_address(static_cast<MonitoredSignal>(s)),
              b.map.signal_address(static_cast<MonitoredSignal>(s)));
  }
  EXPECT_EQ(a.map.ram_bytes_used(), b.map.ram_bytes_used());
}

}  // namespace
}  // namespace easel::arrestor
