#include "arrestor/assertions.hpp"

#include <gtest/gtest.h>

namespace easel::arrestor {
namespace {

struct Fixture {
  mem::AddressSpace space;
  mem::Allocator alloc{space};
  SignalMap map{space, alloc};
  core::DetectionBus bus;
};

TEST(RomParams, EveryContinuousSetSatisfiesItsDeclaredClass) {
  for (std::size_t s = 0; s < kMonitoredSignalCount; ++s) {
    const auto signal = static_cast<MonitoredSignal>(s);
    if (signal == MonitoredSignal::ms_slot_nbr) {
      EXPECT_TRUE(core::validate(rom_slot_params(), rom_signal_class(signal)).ok());
      continue;
    }
    const auto validation = core::validate(rom_continuous_params(signal),
                                           rom_signal_class(signal));
    EXPECT_TRUE(validation.ok()) << to_string(signal);
  }
}

TEST(RomParams, ClassesMatchTable4) {
  EXPECT_EQ(rom_signal_class(MonitoredSignal::set_value), core::SignalClass::continuous_random);
  EXPECT_EQ(rom_signal_class(MonitoredSignal::mscnt),
            core::SignalClass::continuous_static_monotonic);
  EXPECT_EQ(rom_signal_class(MonitoredSignal::pulscnt),
            core::SignalClass::continuous_dynamic_monotonic);
  EXPECT_EQ(rom_signal_class(MonitoredSignal::ms_slot_nbr),
            core::SignalClass::discrete_sequential_linear);
}

TEST(RomParams, SlotParamsRequestedViaDedicatedAccessor) {
  EXPECT_THROW((void)rom_continuous_params(MonitoredSignal::ms_slot_nbr),
               std::invalid_argument);
  const auto p = rom_slot_params();
  EXPECT_EQ(p.domain.size(), 7u);
  EXPECT_EQ(p.transitions.at(6), (std::vector<core::sig_t>{0}));
}

TEST(EaMask, BitsAndNumbering) {
  EXPECT_EQ(ea_bit(MonitoredSignal::set_value), 0x01);
  EXPECT_EQ(ea_bit(MonitoredSignal::out_value), 0x40);
  EXPECT_EQ(kAllAssertions, 0x7f);
}

TEST(AssertionBank, DisabledAssertionsNeverReport) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kNoAssertions};
  f.map.mscnt.set(5000);  // would fail the first bounds... actually passes
  f.map.checkpoint_i.set(99);  // far outside [0, 6]
  bank.test(MonitoredSignal::checkpoint);
  EXPECT_EQ(f.bus.count(), 0u);
  EXPECT_FALSE(bank.enabled(MonitoredSignal::checkpoint));
}

TEST(AssertionBank, BoundsViolationDetectedImmediately) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  f.map.checkpoint_i.set(99);
  bank.test(MonitoredSignal::checkpoint);
  EXPECT_EQ(f.bus.count(), 1u);
  EXPECT_EQ(f.bus.events()[0].continuous_test, core::ContinuousTest::t1_max);
}

TEST(AssertionBank, RateViolationNeedsPriming) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  // First test primes at 100 (bounds only).
  f.map.pulscnt.set(100);
  bank.test(MonitoredSignal::pulscnt);
  EXPECT_EQ(f.bus.count(), 0u);
  // +200 in one test: far over rmax_incr = 12.
  f.map.pulscnt.set(300);
  bank.test(MonitoredSignal::pulscnt);
  EXPECT_EQ(f.bus.count(), 1u);
}

TEST(AssertionBank, StatePersistsInRam) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  f.map.pulscnt.set(100);
  bank.test(MonitoredSignal::pulscnt);
  const auto& slot = f.map.monitor_state[static_cast<std::size_t>(MonitoredSignal::pulscnt)];
  EXPECT_EQ(slot.prev.get(), 100u);
  EXPECT_EQ(slot.flags.get() & 1u, 1u);
}

TEST(AssertionBank, CorruptedMonitorStateTriggersDetection) {
  // A bit-flip in the monitor's own previous-value slot makes the next test
  // compare against a wrong baseline — the detector detects damage to
  // itself, as on the real target where monitor state is ordinary RAM.
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, ea_bit(MonitoredSignal::mscnt)};
  f.map.mscnt.set(1000);
  bank.test(MonitoredSignal::mscnt);
  const auto& slot = f.map.monitor_state[static_cast<std::size_t>(MonitoredSignal::mscnt)];
  f.space.flip_bit16(slot.prev.address(), 9);  // 1000 ^ 512 = 488
  f.map.mscnt.set(1001);                       // the true +1 step
  bank.test(MonitoredSignal::mscnt);
  EXPECT_EQ(f.bus.count(), 1u);
}

TEST(AssertionBank, SlotCycleAcceptedAndBreaksDetected) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, ea_bit(MonitoredSignal::ms_slot_nbr)};
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint16_t s = 0; s < 7; ++s) {
      f.map.ms_slot_nbr.set(s);
      bank.test(MonitoredSignal::ms_slot_nbr);
    }
  }
  EXPECT_EQ(f.bus.count(), 0u);
  f.map.ms_slot_nbr.set(3);  // 6 -> 3 is not the successor
  bank.test(MonitoredSignal::ms_slot_nbr);
  EXPECT_EQ(f.bus.count(), 1u);
  EXPECT_EQ(f.bus.events()[0].discrete_test, core::DiscreteTest::transition);
}

TEST(AssertionBank, RecoveryWritesValueBackToRam) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions,
                     core::RecoveryPolicy::hold_previous};
  f.map.checkpoint_i.set(2);
  bank.test(MonitoredSignal::checkpoint);
  f.map.checkpoint_i.set(77);  // corrupted
  bank.test(MonitoredSignal::checkpoint);
  EXPECT_EQ(f.bus.count(), 1u);
  EXPECT_EQ(f.map.checkpoint_i.get(), 2u);  // restored in RAM
}

TEST(AssertionBank, DetectOnlyLeavesSignalUntouched) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  f.map.checkpoint_i.set(2);
  bank.test(MonitoredSignal::checkpoint);
  f.map.checkpoint_i.set(77);
  bank.test(MonitoredSignal::checkpoint);
  EXPECT_EQ(f.map.checkpoint_i.get(), 77u);
}

TEST(AssertionBank, MonitorNamesFollowPaperConvention) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  EXPECT_EQ(f.bus.monitor_name(bank.bus_id(MonitoredSignal::set_value)), "EA1(SetValue)");
  EXPECT_EQ(f.bus.monitor_name(bank.bus_id(MonitoredSignal::out_value)), "EA7(OutValue)");
  EXPECT_EQ(f.bus.monitor_count(), 7u);
}

TEST(RomParams, PrechargeSetsSatisfyTheirClasses) {
  for (const auto signal : {MonitoredSignal::set_value, MonitoredSignal::is_value,
                            MonitoredSignal::out_value}) {
    EXPECT_TRUE(has_precharge_mode(signal));
    EXPECT_TRUE(core::validate(rom_precharge_params(signal), rom_signal_class(signal)).ok())
        << to_string(signal);
    // The pre-charge bound is strictly tighter than the braking envelope.
    EXPECT_LT(rom_precharge_params(signal).smax, rom_continuous_params(signal).smax);
  }
  EXPECT_FALSE(has_precharge_mode(MonitoredSignal::mscnt));
  EXPECT_THROW((void)rom_precharge_params(MonitoredSignal::mscnt), std::invalid_argument);
}

TEST(AssertionBank, ModedBankUsesPhaseSignal) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions, core::RecoveryPolicy::none,
                     /*per_mode_constraints=*/true};
  // Phase 0 (pre-charge): 2000 pu exceeds the mode-0 bound of 1200.
  f.map.arrest_phase.set(0);
  f.map.set_value.set(2000);
  bank.test(MonitoredSignal::set_value);
  EXPECT_EQ(f.bus.count(), 1u);
  EXPECT_EQ(f.bus.events()[0].mode, 0u);
  // Phase 1 (braking): the same value is fine.
  f.map.arrest_phase.set(1);
  bank.test(MonitoredSignal::set_value);
  EXPECT_EQ(f.bus.count(), 1u);
}

TEST(AssertionBank, CorruptedPhaseDegradesToWideMode) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions, core::RecoveryPolicy::none, true};
  f.map.arrest_phase.set(0xbeef);  // garbage mode variable
  f.map.set_value.set(5000);       // legal in braking, illegal in pre-charge
  bank.test(MonitoredSignal::set_value);
  EXPECT_EQ(f.bus.count(), 0u);  // degraded to the wide set: no false alarm
}

TEST(AssertionBank, UnmodedBankIgnoresPhase) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, kAllAssertions};
  f.map.arrest_phase.set(0);
  f.map.set_value.set(5000);  // above the pre-charge bound
  bank.test(MonitoredSignal::set_value);
  EXPECT_EQ(f.bus.count(), 0u);  // single-mode envelope applies
}

TEST(AssertionBank, SingleAssertionVersionRegistersOneMonitor) {
  Fixture f;
  AssertionBank bank{f.space, f.map, f.bus, ea_bit(MonitoredSignal::is_value)};
  EXPECT_EQ(f.bus.monitor_count(), 1u);
  EXPECT_TRUE(bank.enabled(MonitoredSignal::is_value));
  EXPECT_FALSE(bank.enabled(MonitoredSignal::set_value));
}

}  // namespace
}  // namespace easel::arrestor
