// Campaign preconditions (paper §3.4): "All test cases are such that if
// they are run on the target system without error injection, none of the
// error detection mechanisms report detection" — and, implicitly, none
// fails.  Parameterised over the full 5x5 experiment grid.
#include <gtest/gtest.h>

#include "fi/experiment.hpp"
#include "sim/test_case.hpp"

namespace easel::arrestor {
namespace {

class GridCalibration : public ::testing::TestWithParam<sim::TestCase> {};

TEST_P(GridCalibration, CleanRunNoDetectionNoFailure) {
  fi::RunConfig config;
  config.test_case = GetParam();
  const fi::RunResult r = fi::run_experiment(config);
  EXPECT_FALSE(r.detected) << r.detection_count << " spurious detections";
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(r.stopped);
  EXPECT_LT(r.final_position_m, 300.0);
  EXPECT_LT(r.peak_retardation_g, 2.8 * 0.9);
  // Typical failure-free arrestment duration: about 5 s (high energy was
  // 15 s in the paper; our plant lands in the same band).
  EXPECT_GE(r.stop_ms, 4000u);
  EXPECT_LE(r.stop_ms, 17000u);
}

TEST_P(GridCalibration, CleanRunQuietWithModedAssertions) {
  // The per-phase (extension) configuration must also be silent fault-free.
  fi::RunConfig config;
  config.test_case = GetParam();
  config.moded_assertions = true;
  const fi::RunResult r = fi::run_experiment(config);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.failed);
}

TEST_P(GridCalibration, ForceStaysUnderLimitWithMargin) {
  fi::RunConfig config;
  config.test_case = GetParam();
  const fi::RunResult r = fi::run_experiment(config);
  const double limit =
      force_limits().limit_n(GetParam().mass_kg, GetParam().velocity_mps);
  EXPECT_LT(r.peak_force_n, 0.92 * limit);
}

std::string case_name(const ::testing::TestParamInfo<sim::TestCase>& param_info) {
  return "m" + std::to_string(static_cast<int>(param_info.param.mass_kg)) + "_v" +
         std::to_string(static_cast<int>(param_info.param.velocity_mps * 10.0));
}

INSTANTIATE_TEST_SUITE_P(FullExperimentGrid, GridCalibration,
                         ::testing::ValuesIn(sim::grid_test_cases(5)), case_name);

// Off-grid spot checks: the envelope is safe between grid points too.
class OffGridCalibration : public ::testing::TestWithParam<sim::TestCase> {};

TEST_P(OffGridCalibration, CleanRunNoDetectionNoFailure) {
  fi::RunConfig config;
  config.test_case = GetParam();
  const fi::RunResult r = fi::run_experiment(config);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(r.stopped);
}

INSTANTIATE_TEST_SUITE_P(RandomInteriorPoints, OffGridCalibration,
                         ::testing::ValuesIn(sim::random_test_cases(12, util::Rng{424242})),
                         case_name);

}  // namespace
}  // namespace easel::arrestor
