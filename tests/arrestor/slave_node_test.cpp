#include "arrestor/slave_node.hpp"

#include <gtest/gtest.h>

#include "sim/environment.hpp"

namespace easel::arrestor {
namespace {

class SlaveNodeTest : public ::testing::Test {
 protected:
  void run_ms(std::uint64_t n, std::uint16_t set_point) {
    for (std::uint64_t k = 0; k < n; ++k, ++now_) {
      slave_.tick();
      if (now_ % 7 == 6) slave_.deliver_set_point(set_point, ++seq_);
      env_.step_1ms();
    }
  }

  sim::TestCase test_case_{14000.0, 60.0};
  sim::Environment env_{test_case_, util::Rng{0x5eed}};
  SlaveNode slave_{env_};
  std::uint64_t now_ = 0;
  std::uint16_t seq_ = 0;
};

TEST_F(SlaveNodeTest, ClockRuns) {
  run_ms(500, 0);
  EXPECT_EQ(slave_.signals().mscnt.get(), 500u);
}

TEST_F(SlaveNodeTest, AppliesReceivedSetPoint) {
  run_ms(3000, 4000);
  EXPECT_EQ(slave_.signals().set_value.get(), 4000u);
  EXPECT_EQ(slave_.signals().rx_seq.get(), seq_);
  // The regulator drives slave-drum pressure toward the set point.
  EXPECT_NEAR(env_.slave_pressure_pu(), 4000.0, 600.0);
  // The master drum stays untouched (no master node in this fixture, and
  // its valve deadman has long since closed the valve).
  EXPECT_LT(env_.master_pressure_pu(), 10.0);
}

TEST_F(SlaveNodeTest, NoSetPointMeansNoPressure) {
  run_ms(2000, 0);
  EXPECT_LT(env_.slave_pressure_pu(), sim::kPressureNoisePu + 40.0);
}

TEST_F(SlaveNodeTest, FollowsSetPointChanges) {
  run_ms(3000, 3000);
  const double at_3000 = env_.slave_pressure_pu();
  run_ms(3000, 1000);
  EXPECT_LT(env_.slave_pressure_pu(), at_3000 - 1000.0);
}

TEST_F(SlaveNodeTest, RebootClearsState) {
  run_ms(1000, 2000);
  slave_.boot();
  EXPECT_EQ(slave_.signals().mscnt.get(), 0u);
  EXPECT_EQ(slave_.signals().set_value.get(), 0u);
  EXPECT_EQ(slave_.signals().pid_integral.get(), 0);
  EXPECT_FALSE(slave_.scheduler().halted());
}

TEST_F(SlaveNodeTest, OwnImageSeparateFromAnyMaster) {
  // The slave's memory image has the same dimensions but is a distinct
  // object — paper campaigns inject into the master only.
  EXPECT_EQ(slave_.image().ram_size(), 417u);
  EXPECT_EQ(slave_.image().stack_size(), 1008u);
  slave_.image().write_u16(0, 0xbeef);
  EXPECT_EQ(slave_.signals().set_value.get(), 0xbeefu);  // maps to its own RAM
}

}  // namespace
}  // namespace easel::arrestor
