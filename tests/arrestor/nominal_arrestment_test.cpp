// End-to-end behaviour of the full target system on one fault-free
// arrestment: control-loop progression, signal dynamics, assertion silence.
#include <gtest/gtest.h>

#include "arrestor/master_node.hpp"
#include "arrestor/slave_node.hpp"
#include "core/detection_bus.hpp"
#include "fi/experiment.hpp"

namespace easel::arrestor {
namespace {

class NominalArrestment : public ::testing::Test {
 protected:
  void run_ms(std::uint64_t duration_ms) {
    for (std::uint64_t k = 0; k < duration_ms; ++k, ++now_) {
      bus_.set_time_ms(now_);
      master_.tick();
      slave_.tick();
      if (now_ % 7 == 6) {
        slave_.deliver_set_point(master_.signals().comm_tx_set_value.get(),
                                 master_.signals().comm_tx_seq.get());
      }
      env_.step_1ms();
      classifier_.sample(env_, now_);
    }
  }

  sim::TestCase test_case_{14000.0, 60.0};
  sim::Environment env_{test_case_, util::Rng{0x5eed}};
  core::DetectionBus bus_;
  MasterNode master_{env_, bus_, kAllAssertions};
  SlaveNode slave_{env_};
  FailureClassifier classifier_{test_case_};
  std::uint64_t now_ = 0;
};

TEST_F(NominalArrestment, ClockSignalsTrackTime) {
  run_ms(1000);
  EXPECT_EQ(master_.signals().mscnt.get(), 1000u);
  EXPECT_LT(master_.signals().ms_slot_nbr.get(), 7u);
}

TEST_F(NominalArrestment, EngagementDetectedAndPrechargeApplied) {
  run_ms(300);  // 60 m/s: 0.5 m of cable in ~8 ms; precharge ramps in
  EXPECT_EQ(master_.calc_frame().local_u16(CalcModule::Locals::engaged), 1u);
  EXPECT_EQ(master_.signals().sv_target.get(), kPrechargePu);
  EXPECT_EQ(master_.signals().set_value.get(), kPrechargePu);  // ramp finished
}

TEST_F(NominalArrestment, CheckpointsAdvanceInOrder) {
  std::uint16_t last = 0;
  for (int window = 0; window < 40; ++window) {
    run_ms(500);
    const std::uint16_t i = master_.signals().checkpoint_i.get();
    EXPECT_GE(i, last);
    EXPECT_LE(i, kCheckpointCount);
    EXPECT_LE(i - last, 2u);  // no checkpoint skipping within 0.5 s
    last = i;
  }
  EXPECT_GE(last, 4u);  // 14 t @ 60 m/s crosses at least checkpoints 1..4
}

TEST_F(NominalArrestment, AircraftStopsInsideRunway) {
  run_ms(sim::kObservationMs);
  EXPECT_TRUE(classifier_.stopped());
  EXPECT_LT(classifier_.final_position_m(), 300.0);
  EXPECT_FALSE(classifier_.failed());
  EXPECT_LT(classifier_.peak_retardation_g(), 2.8 * 0.8);  // comfortable margin
  EXPECT_LT(classifier_.peak_force_n(), classifier_.force_limit_n() * 0.9);
}

TEST_F(NominalArrestment, NoAssertionFiresOnCleanRun) {
  run_ms(sim::kObservationMs);
  EXPECT_EQ(bus_.count(), 0u);
}

TEST_F(NominalArrestment, SlaveTracksMasterSetPoint) {
  run_ms(5000);
  const std::uint16_t master_sv = master_.signals().set_value.get();
  const std::uint16_t slave_sv = slave_.signals().set_value.get();
  // The link delivers every 7 ms; during a ramp the slave may lag a hair.
  EXPECT_NEAR(slave_sv, master_sv, 8.0 * kSetValueSlewPuPerMs);
  EXPECT_GT(slave_.signals().out_value.get(), 0u);
  // Both drums carry comparable pressure.
  EXPECT_NEAR(env_.slave_pressure_pu(), env_.master_pressure_pu(),
              0.25 * env_.master_pressure_pu() + 50.0);
}

TEST_F(NominalArrestment, RegulatorDrivesPressureToSetPoint) {
  run_ms(6000);  // well into a steady segment
  const double pressure = env_.master_pressure_pu();
  const double set_point = master_.signals().set_value.get();
  EXPECT_NEAR(pressure, set_point, 0.15 * set_point + 50.0);
}

TEST_F(NominalArrestment, PulscntMatchesDistanceTravelled) {
  run_ms(4000);
  EXPECT_NEAR(master_.signals().pulscnt.get(),
              env_.position_m() / sim::kMetresPerPulse, 15.0);
}

TEST_F(NominalArrestment, SchedulerRunsCleanly) {
  run_ms(1000);
  EXPECT_FALSE(master_.scheduler().halted());
  EXPECT_EQ(master_.scheduler().stats().skips, 0u);
  EXPECT_EQ(master_.scheduler().stats().wrong_vectors, 0u);
}

TEST_F(NominalArrestment, RebootResetsEverything) {
  run_ms(3000);
  master_.boot();
  EXPECT_EQ(master_.signals().mscnt.get(), 0u);
  EXPECT_EQ(master_.signals().set_value.get(), 0u);
  EXPECT_EQ(master_.signals().cp_pulse[0].get(), kCheckpointSpacingPulses);
  EXPECT_FALSE(master_.scheduler().halted());
}

TEST(RunExperiment, GoldenRunMatchesHarness) {
  // The fi::run_experiment harness must agree with the hand-rolled loop.
  fi::RunConfig config;
  config.test_case = {14000.0, 60.0};
  const fi::RunResult r = fi::run_experiment(config);
  EXPECT_FALSE(r.detected);
  EXPECT_FALSE(r.failed);
  EXPECT_TRUE(r.stopped);
  EXPECT_NEAR(r.final_position_m, 250.0, 10.0);
}

}  // namespace
}  // namespace easel::arrestor
