// The target registry: names are stable addresses, lookup is strict, and
// the listing order puts the default target first (the CLIs print it as
// the available-targets list on a bad --target).
#include "target/target.hpp"

#include <gtest/gtest.h>

namespace easel::target {
namespace {

TEST(TargetRegistry, FindsBothTargetsByName) {
  EXPECT_EQ(find_target("arrestor"), &arrestor_target());
  EXPECT_EQ(find_target("observer"), &observer_target());
}

TEST(TargetRegistry, UnknownNameIsNull) {
  EXPECT_EQ(find_target(""), nullptr);
  EXPECT_EQ(find_target("Arrestor"), nullptr);  // names are case-sensitive
  EXPECT_EQ(find_target("no-such-target"), nullptr);
}

TEST(TargetRegistry, DefaultTargetIsTheArrestor) {
  EXPECT_EQ(&default_target(), &arrestor_target());
  EXPECT_EQ(default_target().name(), "arrestor");
}

TEST(TargetRegistry, ListingIsStableWithDefaultFirst) {
  const auto all = all_targets();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], &default_target());
  EXPECT_EQ(all[1], &observer_target());
  for (const Target* t : all) {
    EXPECT_EQ(find_target(t->name()), t);
    EXPECT_FALSE(t->description().empty());
  }
}

TEST(TargetRegistry, SingletonsAreStableAcrossCalls) {
  // CampaignOptions::target holds bare pointers; the registry must hand
  // out the same eternal instance every time.
  EXPECT_EQ(&arrestor_target(), &arrestor_target());
  EXPECT_EQ(&observer_target(), &observer_target());
}

TEST(ArrestorTarget, MatchesTheHistoricalInventory) {
  const Target& t = arrestor_target();
  EXPECT_EQ(t.signal_count(), 7u);
  EXPECT_EQ(t.version_count(), 8u);
  EXPECT_EQ(t.e1_error_count(), 112u);
  EXPECT_EQ(t.make_e1().size(), t.e1_error_count());
  EXPECT_TRUE(t.supports_collapse());
  EXPECT_TRUE(t.supports_prune());
}

TEST(ObserverTarget, InventoryAndCapabilities) {
  const Target& t = observer_target();
  EXPECT_EQ(t.signal_count(), 5u);
  EXPECT_EQ(t.version_count(), 8u);
  EXPECT_EQ(t.e1_error_count(), 80u);
  EXPECT_EQ(t.make_e1().size(), t.e1_error_count());
  EXPECT_FALSE(t.supports_collapse());
  EXPECT_FALSE(t.supports_prune());
  // The last version is the everything-enabled configuration: all five EA
  // bits plus the residual detector bit.
  EXPECT_EQ(t.version_mask(t.version_count() - 1), 0x3f);
}

TEST(ObserverTarget, E2SamplingIsDeterministicAndSized) {
  const Target& t = observer_target();
  const auto a = t.make_e2(util::Rng{42}.derive("e2"), 20, 10);
  const auto b = t.make_e2(util::Rng{42}.derive("e2"), 20, 10);
  ASSERT_EQ(a.size(), 30u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address) << i;
    EXPECT_EQ(a[i].bit, b[i].bit) << i;
  }
  const auto c = t.make_e2(util::Rng{43}.derive("e2"), 20, 10);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].address != c[i].address || a[i].bit != c[i].bit;
  }
  EXPECT_TRUE(any_difference);  // the seed actually reaches the sampler
}

}  // namespace
}  // namespace easel::target
