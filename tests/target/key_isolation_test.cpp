// Cross-target cache-key isolation: identical campaign options under
// different targets must produce distinct campaign and shard keys, the
// default target's keys must stay byte-identical to the pre-interface
// format (stored arrestor blobs remain addressable), and a non-default
// target's parameter set must fingerprint into the key.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fi/campaign.hpp"
#include "fi/shard.hpp"
#include "target/observer/param_set.hpp"
#include "target/target.hpp"

namespace easel::fi {
namespace {

CampaignOptions tiny_options() {
  CampaignOptions options;
  options.test_case_count = 2;
  options.observation_ms = 2000;
  options.seed = 77;
  return options;
}

CampaignOptions observer_options() {
  CampaignOptions options = tiny_options();
  options.target = &target::observer_target();
  return options;
}

TEST(KeyIsolation, SameOptionsDifferentTargetsGetDistinctCampaignKeys) {
  const std::string arrestor_key = campaign_key(tiny_options());
  const std::string observer_key = campaign_key(observer_options());
  EXPECT_NE(arrestor_key, observer_key);
  EXPECT_NE(observer_key.find("target=observer"), std::string::npos) << observer_key;
  EXPECT_EQ(arrestor_key.find("target="), std::string::npos) << arrestor_key;
}

TEST(KeyIsolation, ExplicitDefaultTargetKeepsThePreInterfaceKey) {
  // Selecting the arrestor explicitly must hit the same cache entries as
  // leaving options.target null — the stored-blob compatibility guarantee.
  CampaignOptions explicit_default = tiny_options();
  explicit_default.target = &target::arrestor_target();
  EXPECT_EQ(campaign_key(tiny_options()), campaign_key(explicit_default));
}

TEST(KeyIsolation, ShardKeysAreDistinctAcrossTargetsForTheSameRange) {
  const ShardRange range{0, 16};
  EXPECT_NE(e1_shard_key(tiny_options(), range), e1_shard_key(observer_options(), range));
  // And the range suffix still composes with the target-qualified key.
  EXPECT_EQ(campaign_key(observer_options()) + " errors=0:16",
            e1_shard_key(observer_options(), range));
}

TEST(KeyIsolation, E2KeysAreDistinctAcrossTargetsToo) {
  EXPECT_NE(e2_campaign_key(tiny_options(), 20, 10),
            e2_campaign_key(observer_options(), 20, 10));
}

TEST(KeyIsolation, ErrorCountRespectsTheSelectedTarget) {
  EXPECT_EQ(e1_error_count(tiny_options()), 112u);
  EXPECT_EQ(e1_error_count(observer_options()), 80u);
  EXPECT_EQ(e1_error_count(), 112u);  // the no-options overload stays default
}

TEST(KeyIsolation, TargetParamsFingerprintIntoTheKey) {
  CampaignOptions rom = observer_options();
  const std::string rom_key = campaign_key(rom);
  EXPECT_EQ(rom_key.find("tparams="), std::string::npos) << rom_key;

  auto learned = std::make_shared<observer::ObserverParamSet>(observer::ObserverParamSet::rom());
  learned->provenance = core::ParamProvenance::calibrated;
  learned->origin = "unit-test";
  learned->residual_limit = static_cast<std::uint16_t>(learned->residual_limit + 1);
  CampaignOptions with_params = observer_options();
  with_params.target_params = learned;
  const std::string learned_key = campaign_key(with_params);
  EXPECT_NE(learned_key, rom_key);
  EXPECT_NE(learned_key.find("tparams="), std::string::npos) << learned_key;

  // A different parameter set is a different key — caches never alias
  // across parameter values.
  auto other = std::make_shared<observer::ObserverParamSet>(*learned);
  other->residual_limit = static_cast<std::uint16_t>(other->residual_limit + 1);
  CampaignOptions with_other = observer_options();
  with_other.target_params = other;
  EXPECT_NE(campaign_key(with_other), learned_key);
}

TEST(KeyIsolation, CampaignBlobsAreDistinctAcrossTargets) {
  // Same options, different targets: not just different keys, different
  // bytes — a misrouted lookup could never be satisfied silently.
  const E1Results arrestor_results = run_e1(tiny_options());
  const E1Results observer_results = run_e1(observer_options());
  std::ostringstream arrestor_blob;
  save_e1(arrestor_results, arrestor_blob, campaign_key(tiny_options()));
  std::ostringstream observer_blob;
  save_e1(observer_results, observer_blob, campaign_key(observer_options()));
  EXPECT_NE(arrestor_blob.str(), observer_blob.str());

  // Each blob round-trips only under its own key.
  std::istringstream wrong_key{observer_blob.str()};
  EXPECT_FALSE(load_e1(wrong_key, campaign_key(tiny_options())).has_value());
  std::istringstream right_key{observer_blob.str()};
  EXPECT_TRUE(load_e1(right_key, campaign_key(observer_options())).has_value());
}

}  // namespace
}  // namespace easel::fi
