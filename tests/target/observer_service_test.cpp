// The observer target over the wire: the spec protocol's optional target
// line round-trips (and stays absent for the default target, keeping old
// daemons and old specs byte-compatible), and a loopback submission with
// target=observer is byte-identical to the in-process engine while never
// sharing store entries with an arrestor campaign of the same shape.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "svc/client.hpp"
#include "target/target.hpp"

namespace easel::svc {
namespace {

CampaignSpec observer_spec() {
  CampaignSpec spec;
  spec.series = "e1";
  spec.target = "observer";
  spec.seed = 77;
  spec.cases = 2;
  spec.obs_ms = 2000;
  spec.shards = 3;
  return spec;
}

fi::CampaignOptions observer_options() {
  fi::CampaignOptions options;
  options.target = &target::observer_target();
  options.test_case_count = 2;
  options.observation_ms = 2000;
  options.seed = 77;
  return options;
}

TEST(SpecProtocol, TargetLineRoundTrips) {
  const std::string text = to_text(observer_spec());
  EXPECT_NE(text.find("target observer\n"), std::string::npos) << text;
  std::string error;
  const auto parsed = parse_spec(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->target, "observer");
  EXPECT_EQ(to_text(*parsed), text);
}

TEST(SpecProtocol, DefaultTargetEmitsNoTargetLine) {
  // Wire-byte compatibility: an arrestor spec serializes exactly as it did
  // before targets existed, and parses back to target == "arrestor".
  CampaignSpec spec = observer_spec();
  spec.target = "arrestor";
  const std::string text = to_text(spec);
  EXPECT_EQ(text.find("target"), std::string::npos) << text;
  std::string error;
  const auto parsed = parse_spec(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->target, "arrestor");
}

TEST(SpecProtocol, UnknownTargetIsRejectedWithTheName) {
  CampaignSpec spec = observer_spec();
  spec.target = "toaster";
  std::string error;
  EXPECT_FALSE(spec_options(spec, &error).has_value());
  EXPECT_NE(error.find("toaster"), std::string::npos) << error;
}

TEST(SpecProtocol, ErrorRangeValidatesAgainstTheTargetsErrorCount) {
  // 80..112 is a valid arrestor subset but out of range for the observer's
  // 80-error E1 list — the range check must consult the selected target.
  CampaignSpec spec = observer_spec();
  spec.error_begin = 80;
  spec.error_end = 112;
  std::string error;
  EXPECT_FALSE(spec_error_range(spec, &error).has_value());
  EXPECT_NE(error.find("outside"), std::string::npos) << error;
  spec.target = "arrestor";
  EXPECT_TRUE(spec_error_range(spec, &error).has_value()) << error;
}

/// One live daemon on a kernel-chosen loopback port (same shape as
/// server_test.cpp, duplicated to keep the binaries independent).
class LiveServer {
 public:
  explicit LiveServer(const std::string& store_dir)
      : service_(store_dir, {}), server_(service_) {
    EXPECT_TRUE(server_.start(0));
    thread_ = std::thread{[this] { (void)server_.serve(); }};
  }

  ~LiveServer() {
    server_.stop();
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }

 private:
  CampaignService service_;
  Server server_;
  std::thread thread_;
};

class ObserverServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "observer_service_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ObserverServiceTest, LoopbackSubmissionMatchesInProcessEngine) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto result = client->submit(observer_spec(), &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stats.misses, 3u);

  const auto options = observer_options();
  std::ostringstream reference;
  fi::save_e1(fi::run_e1(options), reference,
              fi::e1_shard_key(options, {0, fi::e1_error_count(options)}));
  EXPECT_EQ(result->blob, reference.str());

  // Warm resubmission: every shard hits, same bytes.
  const auto warm = client->submit(observer_spec(), &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_EQ(warm->stats.hits, 3u);
  EXPECT_EQ(warm->blob, result->blob);
}

TEST_F(ObserverServiceTest, TargetsNeverShareStoreEntries) {
  LiveServer daemon{dir_};
  std::string error;
  auto client = Client::connect("127.0.0.1", daemon.port(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  CampaignSpec arrestor = observer_spec();
  arrestor.target = "arrestor";
  const auto first = client->submit(arrestor, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_EQ(first->stats.misses, 3u);

  // Same shape, different target: a fully cold submission — none of the
  // arrestor shards may satisfy an observer lookup.
  const auto second = client->submit(observer_spec(), &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(second->stats.hits, 0u);
  EXPECT_EQ(second->stats.misses, 3u);
  EXPECT_NE(second->blob, first->blob);
}

}  // namespace
}  // namespace easel::svc
