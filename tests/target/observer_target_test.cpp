// The observer target end-to-end through the campaign engine: pruning is a
// declared no-op (byte-identical results either way), parameter sets
// round-trip through their text format with stable fingerprints, and the
// EA-vs-residual comparison report renders from finished E1 results.
#include "target/observer/param_set.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fi/campaign.hpp"
#include "target/target.hpp"

namespace easel::observer {
namespace {

fi::CampaignOptions tiny_options() {
  fi::CampaignOptions options;
  options.target = &target::observer_target();
  options.test_case_count = 2;
  options.observation_ms = 2000;
  options.seed = 77;
  return options;
}

TEST(ObserverCampaign, PrunedAndUnprunedRunsAreByteIdentical) {
  fi::CampaignOptions pruned = tiny_options();
  fi::CampaignOptions unpruned = tiny_options();
  unpruned.prune = false;
  const std::string key = fi::campaign_key(tiny_options());
  std::ostringstream a;
  fi::save_e1(fi::run_e1(pruned), a, key);
  std::ostringstream b;
  fi::save_e1(fi::run_e1(unpruned), b, key);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ObserverCampaign, E2PrunedAndUnprunedAreByteIdenticalToo) {
  fi::CampaignOptions pruned = tiny_options();
  fi::CampaignOptions unpruned = tiny_options();
  unpruned.prune = false;
  const std::string key = fi::e2_campaign_key(tiny_options(), 20, 10);
  std::ostringstream a;
  fi::save_e2(fi::run_e2(pruned, 20, 10), a, key);
  std::ostringstream b;
  fi::save_e2(fi::run_e2(unpruned, 20, 10), b, key);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ObserverCampaign, JobCountNeverChangesTheBytes) {
  fi::CampaignOptions serial = tiny_options();
  serial.jobs = 1;
  fi::CampaignOptions parallel = tiny_options();
  parallel.jobs = 4;
  const std::string key = fi::campaign_key(tiny_options());
  std::ostringstream a;
  fi::save_e1(fi::run_e1(serial), a, key);
  std::ostringstream b;
  fi::save_e1(fi::run_e1(parallel), b, key);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ObserverCampaign, ComparisonReportRendersFromE1Results) {
  const fi::E1Results results = fi::run_e1(tiny_options());
  const std::string report = target::observer_target().comparison_report(results);
  ASSERT_FALSE(report.empty());
  // The report contrasts the assertion ensemble with the residual
  // detector, per monitored signal.
  for (std::size_t s = 0; s < target::observer_target().signal_count(); ++s) {
    EXPECT_NE(report.find(target::observer_target().signal_name(s)), std::string::npos)
        << report;
  }
  // The arrestor has no comparison report — the hook is optional.
  EXPECT_TRUE(target::arrestor_target().comparison_report(results).empty());
}

TEST(ObserverParamSet, RomValidatesAndSaveLoadRoundTrips) {
  const ObserverParamSet rom = ObserverParamSet::rom();
  const core::Validation validation = validate(rom);
  EXPECT_TRUE(validation.ok())
      << (validation.problems.empty() ? "" : validation.problems.front());

  std::ostringstream out;
  save(rom, out);
  std::istringstream in{out.str()};
  const auto loaded = load(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint(), rom.fingerprint());
  EXPECT_EQ(loaded->residual_limit, rom.residual_limit);
  EXPECT_EQ(loaded->provenance, rom.provenance);

  // A re-save of the loaded set is byte-identical: the format is a fixed
  // point, so provenance survives any number of round trips.
  std::ostringstream again;
  save(*loaded, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ObserverParamSet, FingerprintSeparatesDifferentSets) {
  ObserverParamSet a = ObserverParamSet::rom();
  ObserverParamSet b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.residual_limit = static_cast<std::uint16_t>(b.residual_limit + 1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ObserverParamSet, LoadRejectsForeignMagicAndTruncation) {
  std::istringstream foreign{"easel-params v1\nend\n"};
  EXPECT_FALSE(load(foreign).has_value());

  std::ostringstream out;
  save(ObserverParamSet::rom(), out);
  std::string text = out.str();
  text.resize(text.size() / 2);  // drop the tail, including "end"
  std::istringstream truncated{text};
  EXPECT_FALSE(load(truncated).has_value());
}

TEST(ObserverParamSet, ParsesThroughTheTargetInterface) {
  std::ostringstream out;
  save(ObserverParamSet::rom(), out);
  std::string error;
  const auto parsed = target::observer_target().parse_params(out.str(), error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->fingerprint(), ObserverParamSet::rom().fingerprint());

  const auto bad = target::observer_target().parse_params("not a param set", error);
  EXPECT_EQ(bad, nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace easel::observer
