// Calibrator unit tests: observation accumulation, Table-1 class inference
// and parameter derivation from synthetic envelopes, and offline replay of
// learned sets over the traces they came from.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "calib/calibrator.hpp"
#include "core/continuous_assertion.hpp"

namespace easel::calib {
namespace {

using core::ContinuousParams;
using core::sig_t;
using core::SignalClass;

/// Feeds `values` through an observation sampled every tick and differenced
/// at `period` — the same walk accumulate_continuous performs.
ContinuousObservation observe(const std::vector<sig_t>& values, std::uint32_t period = 1) {
  ContinuousObservation obs;
  for (std::size_t k = 0; k < values.size(); ++k) {
    obs.add_value(values[k]);
    if (k >= period) obs.add_step(values[k], values[k - period]);
  }
  return obs;
}

DiscreteObservation observe_discrete(const std::vector<sig_t>& values) {
  DiscreteObservation obs;
  for (std::size_t k = 0; k < values.size(); ++k) {
    obs.add_value(values[k]);
    if (k >= 1) obs.add_step(values[k], values[k - 1]);
  }
  return obs;
}

TEST(ContinuousObservationTest, TracksEnvelopeAndDirections) {
  const ContinuousObservation obs = observe({5, 7, 4, 4});
  EXPECT_EQ(obs.samples, 4u);
  EXPECT_EQ(obs.steps, 3u);
  EXPECT_EQ(obs.min_value, 4);
  EXPECT_EQ(obs.max_value, 7);
  EXPECT_TRUE(obs.increased);
  EXPECT_EQ(obs.min_incr, 2);
  EXPECT_EQ(obs.max_incr, 2);
  EXPECT_TRUE(obs.decreased);
  EXPECT_EQ(obs.min_decr, 3);
  EXPECT_EQ(obs.max_decr, 3);
  EXPECT_TRUE(obs.paused);
}

TEST(ContinuousObservationTest, MergeCombinesEnvelopes) {
  ContinuousObservation a = observe({10, 12});   // incr 2
  const ContinuousObservation b = observe({30, 25});  // decr 5
  a.merge(b);
  EXPECT_EQ(a.samples, 4u);
  EXPECT_EQ(a.min_value, 10);
  EXPECT_EQ(a.max_value, 30);
  EXPECT_TRUE(a.increased);
  EXPECT_TRUE(a.decreased);
  EXPECT_EQ(a.max_incr, 2);
  EXPECT_EQ(a.max_decr, 5);
  EXPECT_FALSE(a.paused);

  // Merging an untouched observation is the identity.
  const ContinuousObservation before = a;
  a.merge(ContinuousObservation{});
  EXPECT_EQ(a.samples, before.samples);
  EXPECT_EQ(a.min_value, before.min_value);
  EXPECT_EQ(a.max_value, before.max_value);
}

TEST(DeriveClassTest, FollowsTableOneSpecialisationOrder) {
  // Constant delta, one direction, no pause: static monotonic.
  EXPECT_EQ(derive_class(observe({0, 1, 2, 3})), SignalClass::continuous_static_monotonic);
  // ... unless static is disallowed (multi-mode unification).
  EXPECT_EQ(derive_class(observe({0, 1, 2, 3}), false),
            SignalClass::continuous_dynamic_monotonic);
  // Varying delta, one direction: dynamic monotonic.
  EXPECT_EQ(derive_class(observe({0, 1, 3})), SignalClass::continuous_dynamic_monotonic);
  // A pause disqualifies static (the static row forbids zero deltas).
  EXPECT_EQ(derive_class(observe({0, 1, 1, 2})), SignalClass::continuous_dynamic_monotonic);
  // Both directions: random.
  EXPECT_EQ(derive_class(observe({0, 1, 0})), SignalClass::continuous_random);
  // Never moved at all: only the random row accepts all-zero rate bands.
  EXPECT_EQ(derive_class(observe({4, 4, 4})), SignalClass::continuous_random);
}

TEST(DeriveContinuousTest, StaticKeepsExactRateWhateverTheMargin) {
  const ContinuousObservation obs = observe({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const ContinuousParams params = derive_continuous(obs, 0.5);
  EXPECT_EQ(derive_class(obs), SignalClass::continuous_static_monotonic);
  EXPECT_EQ(params.rmin_incr, 1);  // margin never loosens a static rate
  EXPECT_EQ(params.rmax_incr, 1);
  EXPECT_EQ(params.rmin_decr, 0);
  EXPECT_EQ(params.rmax_decr, 0);
  EXPECT_EQ(params.smin, 0);   // 0 - ceil(9 * 0.5) clamps at zero
  EXPECT_EQ(params.smax, 14);  // 9 + ceil(9 * 0.5)
  EXPECT_TRUE(core::validate(params, SignalClass::continuous_static_monotonic).ok());
  EXPECT_EQ(core::infer_class(params), SignalClass::continuous_static_monotonic);
}

TEST(DeriveContinuousTest, DynamicGetsZeroMinRateAndScaledMaxRate) {
  const ContinuousObservation obs = observe({100, 110, 130, 130});
  ASSERT_EQ(derive_class(obs), SignalClass::continuous_dynamic_monotonic);
  const ContinuousParams params = derive_continuous(obs, 0.25);
  EXPECT_EQ(params.rmin_incr, 0);
  EXPECT_EQ(params.rmax_incr, 25);  // ceil(20 * 1.25)
  EXPECT_EQ(params.rmin_decr, 0);
  EXPECT_EQ(params.rmax_decr, 0);
  EXPECT_TRUE(core::validate(params, SignalClass::continuous_dynamic_monotonic).ok());

  // The zero minimum rate is what lets the deployed assertion admit the
  // observed pause (Table 2, test 4c).
  const core::ContinuousAssertion assertion{params};
  EXPECT_TRUE(assertion.check(130, 130).ok);
}

TEST(DeriveContinuousTest, BothDirectionsDeriveRandom) {
  const ContinuousObservation obs = observe({100, 90, 95});
  ASSERT_EQ(derive_class(obs), SignalClass::continuous_random);
  const ContinuousParams params = derive_continuous(obs, 0.0);
  EXPECT_EQ(params.rmax_incr, 5);
  EXPECT_EQ(params.rmax_decr, 10);
  EXPECT_EQ(params.rmin_incr, 0);
  EXPECT_EQ(params.rmin_decr, 0);
  EXPECT_EQ(params.smin, 90);
  EXPECT_EQ(params.smax, 100);
  EXPECT_TRUE(core::validate(params, SignalClass::continuous_random).ok());
}

TEST(DeriveContinuousTest, ConstantSignalGetsUnitBandAndAdmitsItsPauses) {
  const ContinuousObservation obs = observe({42, 42, 42});
  const ContinuousParams params = derive_continuous(obs, 0.0);
  EXPECT_EQ(params.smin, 42);
  EXPECT_EQ(params.smax, 43);  // Table 1 "All" demands smax > smin
  EXPECT_EQ(params.rmax_incr, 0);
  EXPECT_EQ(params.rmax_decr, 0);
  EXPECT_TRUE(core::validate(params, SignalClass::continuous_random).ok());
  // All-zero rates satisfy the 3c pause predicate: the replayed constant
  // signal raises no violation.
  EXPECT_TRUE(core::ContinuousAssertion{params}.check(42, 42).ok);
}

TEST(DeriveContinuousTest, BoundsClampToTheWordRange) {
  const ContinuousObservation obs = observe({10, 65530});
  const ContinuousParams params = derive_continuous(obs, 1.0);
  EXPECT_EQ(params.smin, 0);
  EXPECT_EQ(params.smax, 65535);
}

TEST(DeriveContinuousTest, RejectsEmptyObservationAndNegativeMargin) {
  EXPECT_THROW((void)derive_continuous(ContinuousObservation{}, 0.1), std::invalid_argument);
  EXPECT_THROW((void)derive_continuous(observe({1, 2}), -0.1), std::invalid_argument);
}

TEST(DeriveDiscreteTest, CycleYieldsLinearClassAndObservedTransitions) {
  const DiscreteObservation obs = observe_discrete({0, 1, 2, 0, 1, 2, 0});
  EXPECT_EQ(derive_discrete_class(obs), SignalClass::discrete_sequential_linear);
  const core::DiscreteParams params = derive_discrete(obs);
  EXPECT_EQ(params.domain, (std::vector<sig_t>{0, 1, 2}));
  EXPECT_EQ(params.transitions.at(0), (std::vector<sig_t>{1}));
  EXPECT_EQ(params.transitions.at(2), (std::vector<sig_t>{0}));
  EXPECT_TRUE(core::validate(params, SignalClass::discrete_sequential_linear).ok());
}

TEST(DeriveDiscreteTest, DwellSelfLoopMakesASecondSuccessor) {
  // 1 -> 1 (dwell) and 1 -> 2: Table-1 linear validation counts both, so
  // the inferred class must fall back to non-linear.
  const DiscreteObservation obs = observe_discrete({0, 1, 1, 2});
  EXPECT_EQ(derive_discrete_class(obs), SignalClass::discrete_sequential_nonlinear);
  const core::DiscreteParams params = derive_discrete(obs);
  EXPECT_EQ(params.transitions.at(1), (std::vector<sig_t>{1, 2}));
  EXPECT_FALSE(core::validate(params, SignalClass::discrete_sequential_linear).ok());
  EXPECT_TRUE(core::validate(params, SignalClass::discrete_sequential_nonlinear).ok());
}

// ---------------------------------------------------------------------------
// calibrate() over synthetic traces.
// ---------------------------------------------------------------------------

/// A synthetic master-node trace with all seven monitored signals plus one
/// analog channel, engaging (mode 0 -> 1) halfway through.
trace::Trace synthetic_trace(std::uint64_t ticks = 400) {
  trace::Trace t;
  t.label = "synthetic";
  t.tick_count = ticks;
  t.initial_mode = 0;
  t.mode_changes = {{ticks / 2, 1}};

  const auto add = [&t, ticks](const char* name, trace::ChannelKind kind, std::uint32_t period,
                               auto value_of) {
    trace::SignalTrace s;
    s.name = name;
    s.kind = kind;
    s.period_ms = period;
    for (std::uint64_t k = 0; k < ticks; ++k) {
      s.words.push_back(static_cast<std::uint16_t>(value_of(k)));
    }
    t.signals.push_back(std::move(s));
  };

  using trace::ChannelKind;
  add("SetValue", ChannelKind::continuous, 7,
      [](std::uint64_t k) { return std::min<std::uint64_t>(2000, k * 10); });
  add("IsValue", ChannelKind::continuous, 7,
      [](std::uint64_t k) { return std::min<std::uint64_t>(2100, k * 11); });
  add("i", ChannelKind::continuous, 1,
      [](std::uint64_t k) { return std::min<std::uint64_t>(6, k / 40); });
  add("pulscnt", ChannelKind::continuous, 1, [](std::uint64_t k) { return k / 3; });
  add("ms_slot_nbr", ChannelKind::discrete, 1, [](std::uint64_t k) { return k % 7; });
  add("mscnt", ChannelKind::continuous, 1, [](std::uint64_t k) { return k; });
  add("OutValue", ChannelKind::continuous, 7,
      [](std::uint64_t k) { return std::min<std::uint64_t>(2500, k * 12); });

  trace::SignalTrace analog;
  analog.name = "velocity_mps";
  analog.kind = ChannelKind::analog;
  for (std::uint64_t k = 0; k < ticks; ++k) {
    analog.analog.push_back(60.0 - 0.01 * static_cast<double>(k));
  }
  t.signals.push_back(std::move(analog));
  return t;
}

TEST(CalibrateTest, LearnsEverySignalAndSkipsAnalogChannels) {
  const Calibration calibration = calibrate({synthetic_trace()}, {0.10, false});
  EXPECT_EQ(calibration.signals.size(), 7u);  // velocity_mps is analog: skipped
  EXPECT_EQ(calibration.sources, (std::vector<std::string>{"synthetic"}));
  EXPECT_EQ(calibration.find("velocity_mps"), nullptr);

  const LearnedSignal* mscnt = calibration.find("mscnt");
  ASSERT_NE(mscnt, nullptr);
  EXPECT_EQ(mscnt->cls, SignalClass::continuous_static_monotonic);
  ASSERT_EQ(mscnt->modes.size(), 1u);
  EXPECT_EQ(mscnt->modes.front().rmin_incr, 1);
  EXPECT_EQ(mscnt->modes.front().rmax_incr, 1);

  const LearnedSignal* slot = calibration.find("ms_slot_nbr");
  ASSERT_NE(slot, nullptr);
  EXPECT_TRUE(slot->discrete);
  EXPECT_EQ(slot->cls, SignalClass::discrete_sequential_linear);
  ASSERT_EQ(slot->slot_modes.size(), 1u);
  EXPECT_EQ(slot->slot_modes.front().domain, (std::vector<sig_t>{0, 1, 2, 3, 4, 5, 6}));

  const LearnedSignal* pulscnt = calibration.find("pulscnt");
  ASSERT_NE(pulscnt, nullptr);
  EXPECT_EQ(pulscnt->cls, SignalClass::continuous_dynamic_monotonic);  // 0/+1 steps
}

TEST(CalibrateTest, PerModeSplitsOnlyTheFeedbackSignals) {
  const Calibration calibration = calibrate({synthetic_trace()}, {0.10, true});
  const LearnedSignal* set_value = calibration.find("SetValue");
  ASSERT_NE(set_value, nullptr);
  ASSERT_EQ(set_value->modes.size(), 2u);
  // Pre-charge ramps up from zero; braking only ever holds the plateau, so
  // its learned floor sits at the plateau value.
  EXPECT_EQ(set_value->modes[0].smin, 0);
  EXPECT_EQ(set_value->modes[1].smin, 2000);

  const LearnedSignal* pulscnt = calibration.find("pulscnt");
  ASSERT_NE(pulscnt, nullptr);
  EXPECT_EQ(pulscnt->modes.size(), 1u);  // not a feedback signal: single mode
}

TEST(CalibrateTest, MergesMultipleTracesAndRejectsKindChanges) {
  trace::Trace first = synthetic_trace();
  trace::Trace second = synthetic_trace();
  second.label = "second";
  const Calibration calibration = calibrate({first, second}, {0.0, false});
  EXPECT_EQ(calibration.sources.size(), 2u);
  const LearnedSignal* mscnt = calibration.find("mscnt");
  ASSERT_NE(mscnt, nullptr);
  EXPECT_EQ(mscnt->observed.front().samples, 2u * first.tick_count);

  // A channel flipping kind between traces would mix incompatible envelopes.
  for (trace::SignalTrace& s : second.signals) {
    if (s.name == "pulscnt") s.kind = trace::ChannelKind::discrete;
  }
  EXPECT_THROW((void)calibrate({first, second}, {0.0, false}), std::invalid_argument);
}

TEST(CalibrateTest, RejectsEmptyInputAndBadMargin) {
  EXPECT_THROW((void)calibrate({}, {0.1, false}), std::invalid_argument);
  EXPECT_THROW((void)calibrate({synthetic_trace()}, {-1.0, false}), std::invalid_argument);
}

TEST(CalibrateTest, ToNodeParamsValidatesAndCarriesProvenance) {
  for (const bool per_mode : {false, true}) {
    const Calibration calibration = calibrate({synthetic_trace()}, {0.10, per_mode});
    const arrestor::NodeParamSet params = to_node_params(calibration);
    EXPECT_EQ(params.provenance, core::ParamProvenance::calibrated);
    EXPECT_EQ(params.origin, "calibrated from synthetic");
    EXPECT_DOUBLE_EQ(params.margin, 0.10);
    EXPECT_EQ(params.per_mode(), per_mode);
    const core::Validation validation = arrestor::validate(params);
    EXPECT_TRUE(validation.ok()) << (validation.problems.empty()
                                         ? ""
                                         : validation.problems.front());
  }
}

TEST(CalibrateTest, ToNodeParamsThrowsWhenAMonitoredSignalIsMissing) {
  trace::Trace partial = synthetic_trace();
  std::erase_if(partial.signals,
                [](const trace::SignalTrace& s) { return s.name == "IsValue"; });
  const Calibration calibration = calibrate({partial}, {0.10, false});
  EXPECT_THROW((void)to_node_params(calibration), std::invalid_argument);
}

TEST(ReplayTest, LearnedParamsReplayCleanOverTheirSourceTrace) {
  const trace::Trace trace = synthetic_trace();
  for (const bool per_mode : {false, true}) {
    const arrestor::NodeParamSet params =
        to_node_params(calibrate({trace}, {0.10, per_mode}));
    const ReplayReport report = replay(trace, params);
    EXPECT_GT(report.checks, 0u);
    EXPECT_EQ(report.violations, 0u) << "per_mode=" << per_mode;
  }
}

TEST(ReplayTest, FlagsATraceOutsideTheEnvelope) {
  const trace::Trace trace = synthetic_trace();
  arrestor::NodeParamSet params = to_node_params(calibrate({trace}, {0.0, false}));
  // Tighten SetValue's ceiling below its recorded plateau: the bounds test
  // must fire on every plateau sample.
  auto& set_value = params.continuous[static_cast<std::size_t>(
      arrestor::MonitoredSignal::set_value)];
  set_value.front().smax = 1500;
  const ReplayReport report = replay(trace, params);
  EXPECT_GT(report.violations, 0u);
  EXPECT_GT(report.per_signal[static_cast<std::size_t>(arrestor::MonitoredSignal::set_value)],
            0u);
  EXPECT_EQ(report.per_signal[static_cast<std::size_t>(arrestor::MonitoredSignal::mscnt)], 0u);
}

}  // namespace
}  // namespace easel::calib
