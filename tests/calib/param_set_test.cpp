// NodeParamSet: ROM equivalence, validation prefixes, the defensive
// save/load contract, and fingerprint semantics (payload-only hashing).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arrestor/assertions.hpp"
#include "arrestor/param_set.hpp"

namespace easel::arrestor {
namespace {

TEST(NodeParamSetTest, RomReproducesTheHandSpecifiedValues) {
  const NodeParamSet rom = NodeParamSet::rom();
  EXPECT_EQ(rom.provenance, core::ParamProvenance::hand_specified);
  EXPECT_DOUBLE_EQ(rom.margin, 0.0);
  EXPECT_FALSE(rom.per_mode());
  for (std::size_t idx = 0; idx < kMonitoredSignalCount; ++idx) {
    const auto signal = static_cast<MonitoredSignal>(idx);
    EXPECT_EQ(rom.classes[idx], rom_signal_class(signal)) << to_string(signal);
    if (signal == MonitoredSignal::ms_slot_nbr) {
      ASSERT_EQ(rom.slot_modes.size(), 1u);
      EXPECT_EQ(rom.slot_modes.front(), rom_slot_params());
      EXPECT_TRUE(rom.continuous[idx].empty());
    } else {
      ASSERT_EQ(rom.continuous[idx].size(), 1u) << to_string(signal);
      EXPECT_EQ(rom.continuous[idx].front(), rom_continuous_params(signal))
          << to_string(signal);
    }
  }
  EXPECT_TRUE(validate(rom).ok());
}

TEST(NodeParamSetTest, RomPerModeCarriesPrechargeSetsForFeedbackSignals) {
  const NodeParamSet rom = NodeParamSet::rom(true);
  EXPECT_TRUE(rom.per_mode());
  for (std::size_t idx = 0; idx < kMonitoredSignalCount; ++idx) {
    const auto signal = static_cast<MonitoredSignal>(idx);
    if (signal == MonitoredSignal::ms_slot_nbr) continue;
    if (has_precharge_mode(signal)) {
      ASSERT_EQ(rom.continuous[idx].size(), 2u) << to_string(signal);
      EXPECT_EQ(rom.continuous[idx][0], rom_precharge_params(signal));
      EXPECT_EQ(rom.continuous[idx][1], rom_continuous_params(signal));
    } else {
      EXPECT_EQ(rom.continuous[idx].size(), 1u) << to_string(signal);
    }
  }
  EXPECT_TRUE(validate(rom).ok());
}

TEST(NodeParamSetTest, ValidatePrefixesProblemsWithTheSignalName) {
  NodeParamSet params = NodeParamSet::rom();
  const auto idx = static_cast<std::size_t>(MonitoredSignal::set_value);
  params.continuous[idx].front().smax = params.continuous[idx].front().smin;  // breaks "All"
  const core::Validation bad_value = validate(params);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.problems.front().rfind("SetValue: ", 0), 0u)
      << bad_value.problems.front();

  NodeParamSet missing = NodeParamSet::rom();
  missing.continuous[static_cast<std::size_t>(MonitoredSignal::is_value)].clear();
  const core::Validation no_set = validate(missing);
  ASSERT_FALSE(no_set.ok());
  EXPECT_NE(no_set.problems.front().find("IsValue"), std::string::npos);

  NodeParamSet no_slot = NodeParamSet::rom();
  no_slot.slot_modes.clear();
  EXPECT_FALSE(validate(no_slot).ok());
}

NodeParamSet calibrated_fixture() {
  NodeParamSet params = NodeParamSet::rom(true);
  params.provenance = core::ParamProvenance::calibrated;
  params.origin = "calibrated from golden seed=2000 case=12, golden seed=2000 case=7";
  params.margin = 0.25;
  return params;
}

TEST(NodeParamSetTest, SaveLoadRoundTripsStreamsAndFiles) {
  const NodeParamSet params = calibrated_fixture();
  std::stringstream stream;
  save(params, stream);
  const auto loaded = load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, params);  // provenance, spaced origin, margin included

  const std::string path = ::testing::TempDir() + "param_set_roundtrip.txt";
  ASSERT_TRUE(save(params, path));
  const auto from_file = load(path);
  ASSERT_TRUE(from_file.has_value());
  EXPECT_EQ(*from_file, params);
  EXPECT_FALSE(load(path + ".does-not-exist").has_value());
}

TEST(NodeParamSetTest, LoadRejectsMalformedInput) {
  std::ostringstream out;
  save(calibrated_fixture(), out);
  const std::string good = out.str();

  const auto rejects = [](std::string text) {
    std::istringstream in{std::move(text)};
    EXPECT_FALSE(load(in).has_value());
  };

  rejects("not-a-param-set\n" + good.substr(good.find('\n') + 1));  // wrong magic
  rejects(good.substr(0, good.rfind("end")));                       // truncated
  {
    std::string corrupt = good;
    corrupt.replace(corrupt.find("provenance calibrated"),
                    std::string{"provenance calibrated"}.size(), "provenance guesswork");
    rejects(corrupt);
  }
  {
    std::string corrupt = good;
    corrupt.replace(corrupt.find("rmin_incr"), std::string{"rmin_incr"}.size(), "rmin_incX");
    rejects(corrupt);
  }
  {
    // Duplicate signal entry: replace IsValue's header with SetValue's.
    std::string corrupt = good;
    corrupt.replace(corrupt.find("signal IsValue"), std::string{"signal IsValue"}.size(),
                    "signal SetValue");
    rejects(corrupt);
  }
}

TEST(NodeParamSetTest, FingerprintHashesThePayloadOnly) {
  const NodeParamSet rom = NodeParamSet::rom();
  NodeParamSet relabelled = rom;
  relabelled.provenance = core::ParamProvenance::calibrated;
  relabelled.origin = "some other origin";
  relabelled.margin = 0.5;
  EXPECT_EQ(fingerprint(rom), fingerprint(relabelled));

  NodeParamSet changed = rom;
  changed.continuous[static_cast<std::size_t>(MonitoredSignal::set_value)].front().smax += 1;
  EXPECT_NE(fingerprint(rom), fingerprint(changed));

  EXPECT_NE(fingerprint(NodeParamSet::rom(false)), fingerprint(NodeParamSet::rom(true)));

  // Stable across invocations (cache keys persist on disk between runs).
  EXPECT_EQ(fingerprint(rom), fingerprint(NodeParamSet::rom()));
}

}  // namespace
}  // namespace easel::arrestor
