// End-to-end calibration round trip — the subsystem's acceptance criteria:
//
//   (a) parameters learned from recorded golden traces pass the Table-1
//       validation;
//   (b) they raise zero violations on the traces they were learned from AND
//       on live golden runs of the same test cases;
//   (c) a quick E1 campaign under the learned set detects within five
//       percentage points of the hand-specified ROM set.
//
// Recording needs the scheduler hook: everything trace-dependent skips
// under EASEL_TRACE=OFF.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calib/calibrator.hpp"
#include "fi/campaign.hpp"
#include "fi/run_context.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace easel::calib {
namespace {

/// The quick campaign scale of the acceptance criterion.
fi::CampaignOptions quick_options() {
  fi::CampaignOptions options;
  options.test_case_count = 2;
  options.observation_ms = 12000;
  return options;
}

/// One golden-run config per campaign test case, with the campaign engine's
/// own per-case sensor-noise seeds — the runs the calibrator would observe.
std::vector<fi::RunConfig> golden_configs(const fi::CampaignOptions& options) {
  const std::vector<sim::TestCase> cases = fi::campaign_test_cases(options);
  std::vector<fi::RunConfig> configs;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    fi::RunConfig config;
    config.test_case = cases[ci];
    config.observation_ms = options.observation_ms;
    config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
    configs.push_back(config);
  }
  return configs;
}

/// Records one golden trace per campaign test case (built once, shared by
/// the tests below — recording is two full golden runs).
const std::vector<trace::Trace>& golden_traces() {
  static const std::vector<trace::Trace> traces = [] {
    std::vector<trace::Trace> recorded;
    fi::RunContext context;
    std::size_t ci = 0;
    for (fi::RunConfig config : golden_configs(quick_options())) {
      trace::Recorder recorder{{1u << 20, "golden case " + std::to_string(ci++)}};
      config.trace = &recorder;
      const fi::RunResult result = context.run(config);
      EXPECT_FALSE(result.detected);  // the rig's golden runs are clean
      recorded.push_back(recorder.snapshot());
    }
    return recorded;
  }();
  return traces;
}

constexpr double kMargin = 1.0;

TEST(CalibrationRoundTrip, LearnedParamsValidateAndReplayClean) {
  if (!trace::Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  for (const bool per_mode : {false, true}) {
    const Calibration calibration = calibrate(golden_traces(), {kMargin, per_mode});
    const arrestor::NodeParamSet params = to_node_params(calibration);

    // (a) Table-1 validity of every learned signal and mode.
    const core::Validation validation = arrestor::validate(params);
    EXPECT_TRUE(validation.ok()) << (validation.problems.empty()
                                         ? ""
                                         : validation.problems.front());
    EXPECT_EQ(params.provenance, core::ParamProvenance::calibrated);
    EXPECT_EQ(params.per_mode(), per_mode);

    // (b) Zero violations replaying the source traces.
    for (const trace::Trace& trace : golden_traces()) {
      const ReplayReport report = replay(trace, params);
      EXPECT_GT(report.checks, 0u);
      EXPECT_EQ(report.violations, 0u)
          << trace.label << " per_mode=" << per_mode;
    }
  }
}

TEST(CalibrationRoundTrip, LiveGoldenRunsUnderLearnedParamsStayClean) {
  if (!trace::Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  const auto params = std::make_shared<const arrestor::NodeParamSet>(
      to_node_params(calibrate(golden_traces(), {kMargin, false})));
  fi::RunContext context;
  for (fi::RunConfig config : golden_configs(quick_options())) {
    config.params = params;
    const fi::RunResult result = context.run(config);
    EXPECT_FALSE(result.detected);  // (b): no false positives in vivo
    EXPECT_EQ(result.detection_count, 0u);
  }
}

TEST(CalibrationRoundTrip, QuickE1CoverageWithinFivePointsOfRom) {
  if (!trace::Recorder::compiled_in()) GTEST_SKIP() << "EASEL_TRACE is OFF in this build";
  const fi::E1Results rom = fi::run_e1(quick_options());

  fi::CampaignOptions learned_options = quick_options();
  learned_options.params = std::make_shared<const arrestor::NodeParamSet>(
      to_node_params(calibrate(golden_traces(), {kMargin, false})));
  const fi::E1Results learned = fi::run_e1(learned_options);

  const double rom_coverage = rom.totals[fi::kAllVersion].detection.all.point();
  const double learned_coverage = learned.totals[fi::kAllVersion].detection.all.point();
  EXPECT_GT(rom_coverage, 0.0);
  EXPECT_LE(std::abs(learned_coverage - rom_coverage), 0.05)
      << "ROM " << rom_coverage << " vs learned " << learned_coverage;
}

TEST(CalibrationRoundTrip, CampaignKeyAndCacheDisambiguateParamSets) {
  // Key semantics are trace-independent: exercised even under EASEL_TRACE=OFF.
  fi::CampaignOptions rom_options = quick_options();
  const std::string rom_key = fi::campaign_key(rom_options);

  fi::CampaignOptions a = quick_options();
  a.params = std::make_shared<const arrestor::NodeParamSet>(arrestor::NodeParamSet::rom(false));
  fi::CampaignOptions b = quick_options();
  b.params = std::make_shared<const arrestor::NodeParamSet>(arrestor::NodeParamSet::rom(true));

  const std::string key_a = fi::campaign_key(a);
  const std::string key_b = fi::campaign_key(b);
  EXPECT_NE(key_a, rom_key);  // a param set changes the cache key...
  EXPECT_NE(key_a, key_b);    // ...and different sets never alias

  // A result saved under one param set's key must not load under another's.
  std::stringstream cache;
  fi::save_e1(fi::E1Results{}, cache, key_a);
  EXPECT_FALSE(fi::load_e1(cache, key_b).has_value());
  cache.clear();
  cache.seekg(0);
  EXPECT_TRUE(fi::load_e1(cache, key_a).has_value());
}

}  // namespace
}  // namespace easel::calib
