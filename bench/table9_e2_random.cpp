// Regenerates paper Table 9: detection coverage and latency for error set
// E2 — 200 bit-flip errors at random positions (150 in the 417-byte
// application RAM, 50 in the 1008-byte stack) x 25 test cases = 5000 runs
// on the all-assertions version.
//
// The campaign is cached under its configuration key: a second invocation
// at the same scale/seed reuses the results (no runs, no progress output).
//
// Also evaluates the §2.4 coverage model against the measurement: with Pem
// read off the memory map and Pds from the E1 headline, the measured
// Pdetect implies a propagation probability Pprop.
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "bench_daemon.hpp"
#include "core/coverage_model.hpp"
#include "fi/report.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  fi::PruneStats prune_stats;
  options.prune_stats = &prune_stats;
  const std::string key = fi::e2_campaign_key(options);
  const std::string cache = bench::e2_cache_path();

  const bench::WallTimer timer;
  bool cached = false;
  double wall = 0.0;
  fi::E2Results results;
  if (const std::string daemon = bench::via_daemon(); !daemon.empty()) {
    const auto submitted = bench::submit_or_die(bench::spec_for(options, "e2"), daemon);
    std::istringstream blob{submitted.blob};
    const auto loaded = fi::load_e2(blob, submitted.key);
    if (!loaded) return 1;  // unreachable: the client verified the blob
    results = *loaded;
    cached = submitted.stats.misses == 0;
    // Client-observed throughput: daemon execution + store + wire.
    bench::record_campaign("table9_e2_random_via_daemon", options, submitted.key,
                           results.runs, timer.seconds(), cached);
  } else if (const auto loaded = fi::load_e2(cache, key)) {
    std::fprintf(stderr, "using cached E2 campaign from %s\n", cache.c_str());
    results = *loaded;
    cached = true;
    wall = timer.seconds();
  } else {
    std::fprintf(stderr,
                 "running E2 campaign: 200 errors x %zu cases, %u-ms window, %zu jobs\n",
                 options.test_case_count, options.observation_ms, options.jobs);
    wall = bench::best_of_repeat([&] { results = fi::run_e2(options); });
    save_e2(results, cache, key);
  }
  if (bench::via_daemon().empty()) {
    bench::record_campaign("table9_e2_random", options, key, results.runs, wall, cached,
                           &prune_stats);
  }

  std::printf("%s\n", fi::render_table9(results).c_str());
  std::printf("%s\n", fi::render_e2_summary(results).c_str());

  std::printf("Detection-latency distribution, all areas (log buckets):\n%s",
              results.total.histogram.render().c_str());
  std::printf("p50 >= %llu ms, p90 >= %llu ms\n\n",
              static_cast<unsigned long long>(results.total.histogram.quantile_floor(0.5)),
              static_cast<unsigned long long>(results.total.histogram.quantile_floor(0.9)));

  // Coverage-model cross-check (paper §2.4): Pdetect = (Pen*Pprop + Pem)*Pds.
  const fi::TargetInfo target = fi::probe_target();
  const double monitored_bytes = 2.0 * arrestor::kMonitoredSignalCount;
  const double p_em = monitored_bytes / static_cast<double>(target.ram_bytes);
  const double p_detect_ram = results.ram.detection.all.point();
  std::printf("Coverage model (RAM area): Pem = %.4f (14 of %zu bytes monitored)\n", p_em,
              target.ram_bytes);
  const double p_ds = 0.74;  // E1 headline estimate for Pds
  try {
    const double p_prop = core::solve_p_prop(p_detect_ram, p_em, p_ds);
    std::printf("  measured Pdetect = %.4f with Pds = %.2f implies Pprop = %.4f\n",
                p_detect_ram, p_ds, p_prop);
  } catch (const std::domain_error& e) {
    std::printf("  model inconsistent with measurement at Pds = %.2f: %s\n", p_ds, e.what());
  }
  return 0;
}
