// Ablation: signal modes.  Paper §2.1 closes with "using different modes
// may increase the possibility of detecting errors"; this harness measures
// that.  With per-phase constraints armed, the feedback-signal assertions
// carry a tight pre-charge parameter set (mode 0) selected by the
// CALC-produced arrest_phase signal, so errors landing before the first
// checkpoint face bounds an order of magnitude tighter.
//
// Workload: E1 errors on the three feedback signals (the only signals with
// a distinct pre-charge set), all bits, all-assertions version.
// Options as in the campaign harnesses (default here: 5 test cases).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/estimator.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 5;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();

  const arrestor::MonitoredSignal signals[] = {arrestor::MonitoredSignal::set_value,
                                               arrestor::MonitoredSignal::is_value,
                                               arrestor::MonitoredSignal::out_value};

  std::printf("Signal-mode ablation: feedback signals x 16 bits x %zu cases\n\n",
              cases.size());
  std::printf("%-10s %18s %18s\n", "signal", "single-mode P(d)%", "two-mode P(d)%");

  for (const auto signal : signals) {
    stats::Proportion single, moded;
    for (unsigned bit = 0; bit < 16; ++bit) {
      for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        fi::RunConfig config;
        config.test_case = cases[ci];
        config.error = errors[static_cast<std::size_t>(signal) * 16 + bit];
        config.observation_ms = options.observation_ms;
        config.injection_period_ms = options.injection_period_ms;
        config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();

        config.moded_assertions = false;
        single.add(fi::run_experiment(config).detected);
        config.moded_assertions = true;
        moded.add(fi::run_experiment(config).detected);
      }
    }
    std::printf("%-10s %18.1f %18.1f\n", arrestor::to_string(signal),
                100.0 * single.point(), 100.0 * moded.point());
  }

  // Sanity: the moded configuration must stay silent on clean runs.
  std::size_t false_alarms = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    fi::RunConfig config;
    config.test_case = cases[ci];
    config.observation_ms = options.observation_ms;
    config.moded_assertions = true;
    config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
    false_alarms += fi::run_experiment(config).detected ? 1u : 0u;
  }
  std::printf("\nfalse alarms on clean runs with modes armed: %zu / %zu (must be 0)\n",
              false_alarms, cases.size());
  std::printf("(mode 0 tightens the pre-charge window: bits that sit inside the braking\n"
              " envelope but outside the pre-charge bound become detectable early)\n");
  return 0;
}
