// Regenerates paper Figure 2: example traces of the three continuous signal
// classes — (a) random, (b) static monotonic with wrap-around, (c) dynamic
// monotonic — rendered as ASCII strip charts, each validated by its own
// executable assertion (zero violations on the nominal trace, flagged
// violations once corrupted).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/channel.hpp"
#include "util/rng.hpp"

using namespace easel;

namespace {

void plot(const char* title, const std::vector<core::sig_t>& samples, core::sig_t lo,
          core::sig_t hi) {
  constexpr int kRows = 12;
  std::printf("%s\n", title);
  for (int row = kRows - 1; row >= 0; --row) {
    const double band_lo = lo + (hi - lo) * static_cast<double>(row) / kRows;
    const double band_hi = lo + (hi - lo) * static_cast<double>(row + 1) / kRows;
    std::string line;
    for (const core::sig_t s : samples) {
      line += (s >= band_lo && s < band_hi) ? '*' : ' ';
    }
    std::printf("  %6.0f |%s\n", band_lo, line.c_str());
  }
  std::printf("         +%s\n\n", std::string(samples.size(), '-').c_str());
}

std::size_t violations(core::Channel& channel, const std::vector<core::sig_t>& samples) {
  std::size_t count = 0;
  channel.reset();
  for (const core::sig_t s : samples) count += channel.test(s).ok ? 0u : 1u;
  return count;
}

}  // namespace

int main() {
  util::Rng rng{42};
  constexpr int kSamples = 64;

  // (a) Random continuous: bounded walk.
  std::vector<core::sig_t> random_trace;
  core::sig_t value = 500;
  for (int k = 0; k < kSamples; ++k) {
    value += static_cast<core::sig_t>(rng.uniform_i64(-90, 90));
    value = std::clamp(value, 0, 1000);
    random_trace.push_back(value);
  }
  plot("Figure 2(a): random continuous signal", random_trace, 0, 1000);

  // (b) Static monotonic with wrap-around: a sawtooth counter.
  std::vector<core::sig_t> saw_trace;
  value = 0;
  for (int k = 0; k < kSamples; ++k) {
    value += 50;
    if (value > 1000) value = value - 1000 - 1;  // wrap: smax and smin identified
    saw_trace.push_back(value);
  }
  plot("Figure 2(b): static monotonic signal (with wrap-around)", saw_trace, 0, 1000);

  // (c) Dynamic monotonic: decelerating velocity.
  std::vector<core::sig_t> mono_trace;
  value = 1000;
  for (int k = 0; k < kSamples; ++k) {
    value -= static_cast<core::sig_t>(rng.uniform_i64(5, 30));
    value = std::max(value, 0);
    mono_trace.push_back(value);
  }
  plot("Figure 2(c): dynamic monotonic signal", mono_trace, 0, 1000);

  // Each class's assertion accepts its own nominal trace...
  auto random_ch = core::Channel::continuous(
      "fig2a", core::SignalClass::continuous_random,
      {.smax = 1000, .smin = 0, .rmin_incr = 0, .rmax_incr = 90, .rmin_decr = 0,
       .rmax_decr = 90, .wrap = false});
  auto saw_ch = core::Channel::continuous(
      "fig2b", core::SignalClass::continuous_static_monotonic,
      {.smax = 1000, .smin = 0, .rmin_incr = 50, .rmax_incr = 50, .rmin_decr = 0,
       .rmax_decr = 0, .wrap = true});
  auto mono_ch = core::Channel::continuous(
      "fig2c", core::SignalClass::continuous_dynamic_monotonic,
      {.smax = 1000, .smin = 0, .rmin_incr = 0, .rmax_incr = 0, .rmin_decr = 5,
       .rmax_decr = 30, .wrap = false});

  std::printf("nominal traces:   fig2a %zu violations, fig2b %zu, fig2c %zu (expect 0/0/0)\n",
              violations(random_ch, random_trace), violations(saw_ch, saw_trace),
              violations(mono_ch, mono_trace));

  // ...and flags the corrupted versions.
  auto corrupt = [](std::vector<core::sig_t> trace, std::size_t at, int bit) {
    trace[at] ^= 1 << bit;
    return trace;
  };
  std::printf("bit-flipped traces: fig2a %zu violations, fig2b %zu, fig2c %zu (expect >0)\n",
              violations(random_ch, corrupt(random_trace, 20, 10)),
              violations(saw_ch, corrupt(saw_trace, 20, 6)),
              violations(mono_ch, corrupt(mono_trace, 20, 9)));
  return 0;
}
