// Shared option handling for the campaign harnesses.
//
// Every campaign bench runs at full paper scale by default and accepts:
//   --cases N       test cases per error (default 25, the 5x5 grid)
//   --obs-ms N      observation window (default 40000)
//   --seed N        campaign master seed (default 2000)
//   --jobs N        worker threads (default: hardware concurrency; results
//                   are bit-identical for any value)
//   --out-dir DIR   directory for campaign caches and BENCH_*.json
//   --quick         shorthand for --cases 2 --obs-ms 12000 (smoke-test scale)
//   --no-prune      disable fault-space pruning (byte-identical, just slower)
//   --verify-prune F  re-execute fraction F of pruned runs and assert equality
//   --batch N       lockstep batch width (default 56; see fi/batch.hpp)
//   --no-batch      run every replica on the scalar engine (byte-identical)
//   --verify-batch F  re-execute fraction F of batch-completed runs on the
//                   scalar engine and assert field-exact equality
//   --repeat N      execute the campaign N times and record the fastest
//                   wall time (default 1; the standard defence against a
//                   noisy shared host when measuring throughput)
//   --via-daemon HOST:PORT  submit the campaign to a running easel-campaignd
//                   instead of executing in-process (campaign benches only;
//                   results are bit-identical, timing is client-observed)
//   --target NAME   fault-injection target (default: arrestor); unknown
//                   names are a strict error listing the registry
//
// Environment equivalents, so "for b in build/bench/*; do $b; done" can be
// scaled from the outside: EASEL_QUICK (any non-empty value), EASEL_JOBS,
// EASEL_OUT_DIR, EASEL_VIA_DAEMON.  Numeric options are validated strictly: non-numeric,
// zero, or negative values are usage errors, never silently 0.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "fi/campaign.hpp"
#include "target/target.hpp"
#include "util/thread_pool.hpp"

namespace bench {

/// Strict positive-integer parsing for command-line/environment values:
/// rejects empty, non-numeric, trailing-garbage, zero, and negative input
/// with a clear message (std::atoll would silently yield 0).
inline std::uint64_t parse_positive(const char* what, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long long value = text == nullptr ? 0 : std::strtoll(text, &end, 10);
  if (text == nullptr || end == text || *end != '\0' || errno != 0 || value <= 0) {
    std::fprintf(stderr, "easel bench: %s expects a positive integer, got '%s'\n", what,
                 text == nullptr ? "" : text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

/// Directory for campaign caches and BENCH_*.json artefacts:
/// --out-dir / EASEL_OUT_DIR, else "bench_out" under the current directory
/// (created on demand) so build artefacts never land loose in the CWD.
inline std::string& out_dir_storage() {
  static std::string dir;
  return dir;
}

/// --via-daemon HOST:PORT (or EASEL_VIA_DAEMON); empty = run in-process.
/// Kept here (plain string, no svc dependency) so parse_options can fill
/// it; the submission helpers live in bench_daemon.hpp.
inline std::string& via_daemon_storage() {
  static std::string target;
  return target;
}

inline std::string via_daemon() {
  std::string target = via_daemon_storage();
  if (target.empty()) {
    if (const char* env = std::getenv("EASEL_VIA_DAEMON"); env != nullptr && env[0] != '\0') {
      target = env;
    }
  }
  return target;
}

inline std::string out_dir() {
  std::string dir = out_dir_storage();
  if (dir.empty()) {
    if (const char* env = std::getenv("EASEL_OUT_DIR"); env != nullptr && env[0] != '\0') {
      dir = env;
    } else {
      dir = "bench_out";
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    // Fail here, with the path and the OS error, not later with a cryptic
    // ofstream failure on a path inside a directory that never existed.
    std::fprintf(stderr, "easel bench: cannot create out-dir '%s': %s (errno %d)\n",
                 dir.c_str(), ec.message().c_str(), ec.value());
    std::exit(2);
  }
  return dir;
}

/// --repeat N (default 1): how many times the bench executes its campaign,
/// recording the fastest wall time.
inline std::size_t& repeat_storage() {
  static std::size_t count = 1;
  return count;
}
inline std::size_t repeat() { return repeat_storage(); }

inline easel::fi::CampaignOptions parse_options(int argc, char** argv) {
  easel::fi::CampaignOptions options;
  options.jobs = easel::util::default_jobs();
  if (const char* env = std::getenv("EASEL_JOBS"); env != nullptr && env[0] != '\0') {
    options.jobs = static_cast<std::size_t>(parse_positive("EASEL_JOBS", env));
  }
  const auto quick = [&options] {
    options.test_case_count = 2;
    options.observation_ms = 12000;
  };
  if (const char* env = std::getenv("EASEL_QUICK"); env != nullptr && env[0] != '\0') quick();
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    const auto value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "easel bench: %s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--quick")) {
      quick();
    } else if (is("--cases")) {
      options.test_case_count = static_cast<std::size_t>(parse_positive("--cases", value("--cases")));
    } else if (is("--obs-ms")) {
      options.observation_ms = static_cast<std::uint32_t>(parse_positive("--obs-ms", value("--obs-ms")));
    } else if (is("--seed")) {
      options.seed = parse_positive("--seed", value("--seed"));
    } else if (is("--jobs")) {
      options.jobs = static_cast<std::size_t>(parse_positive("--jobs", value("--jobs")));
    } else if (is("--no-prune")) {
      options.prune = false;
    } else if (is("--verify-prune")) {
      const char* text = value("--verify-prune");
      char* end = nullptr;
      errno = 0;
      const double fraction = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno != 0 || fraction < 0.0 || fraction > 1.0) {
        std::fprintf(stderr, "easel bench: --verify-prune expects a fraction in [0,1], got '%s'\n",
                     text);
        std::exit(2);
      }
      options.verify_prune = fraction;
    } else if (is("--batch")) {
      options.batch = static_cast<std::size_t>(parse_positive("--batch", value("--batch")));
    } else if (is("--no-batch")) {
      options.batch = 0;
    } else if (is("--verify-batch")) {
      const char* text = value("--verify-batch");
      char* end = nullptr;
      errno = 0;
      const double fraction = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno != 0 || fraction < 0.0 || fraction > 1.0) {
        std::fprintf(stderr, "easel bench: --verify-batch expects a fraction in [0,1], got '%s'\n",
                     text);
        std::exit(2);
      }
      options.verify_batch = fraction;
    } else if (is("--repeat")) {
      repeat_storage() = static_cast<std::size_t>(parse_positive("--repeat", value("--repeat")));
    } else if (is("--out-dir")) {
      out_dir_storage() = value("--out-dir");
    } else if (is("--via-daemon")) {
      via_daemon_storage() = value("--via-daemon");
    } else if (is("--target")) {
      const char* name = value("--target");
      options.target = easel::target::find_target(name);
      if (options.target == nullptr) {
        std::fprintf(stderr, "easel bench: unknown target '%s'; available targets:\n", name);
        for (const easel::target::Target* t : easel::target::all_targets()) {
          std::string caps;
          if (t->supports_prune()) caps += "prune ";
          if (t->supports_collapse()) caps += "collapse ";
          if (t->supports_batch()) caps += "batch ";
          if (caps.empty()) {
            caps = "dedup-only";
          } else {
            caps.pop_back();
          }
          std::fprintf(stderr, "  %-10s %s  [%s]\n", t->name().c_str(),
                       t->description().c_str(), caps.c_str());
        }
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "unknown option '%s' (supported: --quick --cases N --obs-ms N --seed N "
                   "--jobs N --no-prune --verify-prune F --batch N --no-batch "
                   "--verify-batch F --repeat N --out-dir DIR "
                   "--via-daemon HOST:PORT --target NAME)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  // Thread-safe, rate-limited progress: workers may report concurrently, so
  // serialize the terminal writes and cap them at ~10 updates/s (plus the
  // final one) — a 16-way campaign otherwise spends real time on \r redraws.
  options.progress = [](std::size_t done, std::size_t total) {
    static std::mutex mutex;
    static std::chrono::steady_clock::time_point last{};
    const std::lock_guard<std::mutex> lock{mutex};
    const auto now = std::chrono::steady_clock::now();
    if (done != total && now - last < std::chrono::milliseconds(100)) return;
    last = now;
    std::fprintf(stderr, "\r  %zu / %zu runs", done, total);
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
  return options;
}

/// Cache file shared by the table-7 and table-8 harnesses.
inline std::string e1_cache_path() {
  if (const char* env = std::getenv("EASEL_E1_CACHE"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return out_dir() + "/easel_e1_results.cache";
}

/// Cache file reused across table-9 (and all-assertions ablation) runs.
inline std::string e2_cache_path() {
  if (const char* env = std::getenv("EASEL_E2_CACHE"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return out_dir() + "/easel_e2_results.cache";
}

/// Wall-clock stopwatch for campaign timing.
class WallTimer {
 public:
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

/// Times repeat() executions of `run` and returns the fastest wall time.
/// Campaign results are bit-identical across rounds (the engines are
/// deterministic), so re-assigning the same results is safe and only the
/// timing varies.
template <typename Fn>
double best_of_repeat(Fn&& run) {
  double best = 0.0;
  for (std::size_t round = 0; round < repeat(); ++round) {
    const WallTimer timer;
    run();
    const double wall = timer.seconds();
    if (round == 0 || wall < best) best = wall;
  }
  return best;
}

/// Appends one record to <out-dir>/BENCH_campaigns.json (a JSON array,
/// rewritten in place), so campaign throughput is tracked machine-readably
/// across invocations and PRs.  Every record carries the worker count, the
/// host's core count, and the pruning mode, so trajectories stay comparable
/// across machines and configurations; when the campaign actually executed
/// (not cached), the pruning breakdown says where the run budget went.
/// The target name keys every record, so multi-target trajectories never
/// collide in one BENCH_campaigns.json.
inline void record_campaign(const char* bench, const easel::fi::CampaignOptions& options,
                            const std::string& key, std::size_t runs, double wall_seconds,
                            bool cached, const easel::fi::PruneStats* prune_stats = nullptr) {
  const std::string target_name = options.target != nullptr
                                      ? options.target->name()
                                      : easel::target::default_target().name();
  std::ostringstream entry;
  entry << "  {\"bench\": \"" << bench << "\", \"target\": \"" << target_name
        << "\", \"key\": \"" << key << "\", \"jobs\": " << options.jobs
        << ", \"host_cores\": " << std::thread::hardware_concurrency()
        << ", \"prune\": " << (options.prune ? "true" : "false")
        << ", \"batch\": " << options.batch
        << ", \"cases\": " << options.test_case_count
        << ", \"obs_ms\": " << options.observation_ms << ", \"runs\": " << runs
        << ", \"wall_s\": " << wall_seconds << ", \"runs_per_sec\": "
        << (wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0)
        << ", \"ms_per_run\": "
        << (runs > 0 ? wall_seconds * 1000.0 / static_cast<double>(runs) : 0.0)
        << ", \"cached\": " << (cached ? "true" : "false")
        << ", \"repeat\": " << repeat();
  if (options.batch > 0 && !cached) {
    // The headline the batching PRs track: nominal runs per wall second with
    // the lockstep engine engaged (same formula as runs_per_sec, keyed
    // separately so trajectories filter trivially).
    entry << ", \"runs_per_s_batched\": "
          << (wall_seconds > 0.0 ? static_cast<double>(runs) / wall_seconds : 0.0);
  }
  if (!cached && prune_stats != nullptr) {
    entry << ", \"runs_executed\": " << prune_stats->runs_executed
          << ", \"runs_synthesized\": " << prune_stats->runs_synthesized
          << ", \"runs_early_exited\": " << prune_stats->runs_early_exited
          << ", \"runs_deduped\": " << prune_stats->runs_deduped
          << ", \"runs_collapsed\": " << prune_stats->runs_collapsed
          << ", \"runs_verified\": " << prune_stats->runs_verified
          << ", \"golden_passes\": " << prune_stats->golden_passes
          << ", \"runs_executed_batched\": " << prune_stats->runs_executed_batched
          << ", \"runs_fell_back\": " << prune_stats->runs_fell_back;
  }
  entry << "}";

  const std::string path = out_dir() + "/BENCH_campaigns.json";
  std::string existing;
  if (std::ifstream in{path}) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  // Keep the file a valid JSON array: drop the closing bracket (and any
  // trailing whitespace) of the previous contents, then re-close it.
  const std::size_t bracket = existing.find_last_of(']');
  std::ofstream out{path, std::ios::trunc};
  if (bracket == std::string::npos || existing.find_first_of('[') == std::string::npos) {
    out << "[\n" << entry.str() << "\n]\n";
  } else {
    std::string head = existing.substr(0, bracket);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) head.pop_back();
    if (head == "[") {
      out << "[\n" << entry.str() << "\n]\n";  // previous file held an empty array
    } else {
      out << head << ",\n" << entry.str() << "\n]\n";
    }
  }
}

}  // namespace bench
