// Shared option handling for the campaign harnesses.
//
// Every campaign bench runs at full paper scale by default and accepts:
//   --cases N       test cases per error (default 25, the 5x5 grid)
//   --obs-ms N      observation window (default 40000)
//   --seed N        campaign master seed (default 2000)
//   --quick         shorthand for --cases 2 --obs-ms 12000 (smoke-test scale)
//
// The EASEL_QUICK environment variable (any non-empty value) also enables
// quick mode, so "for b in build/bench/*; do $b; done" can be scaled from
// the outside.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fi/campaign.hpp"

namespace bench {

inline easel::fi::CampaignOptions parse_options(int argc, char** argv) {
  easel::fi::CampaignOptions options;
  const auto quick = [&options] {
    options.test_case_count = 2;
    options.observation_ms = 12000;
  };
  if (const char* env = std::getenv("EASEL_QUICK"); env != nullptr && env[0] != '\0') quick();
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* name) { return std::strcmp(argv[i], name) == 0; };
    if (is("--quick")) {
      quick();
    } else if (is("--cases") && i + 1 < argc) {
      options.test_case_count = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (is("--obs-ms") && i + 1 < argc) {
      options.observation_ms = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (is("--seed") && i + 1 < argc) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option '%s' (supported: --quick --cases N --obs-ms N --seed N)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  options.progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r  %zu / %zu runs", done, total);
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
  return options;
}

/// Cache file shared by the table-7 and table-8 harnesses.
inline std::string e1_cache_path() {
  if (const char* env = std::getenv("EASEL_E1_CACHE"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "easel_e1_results.cache";
}

}  // namespace bench
