// Ablation: executable assertions vs NVP-style duplex comparison — the
// trade the paper's introduction frames (assertions are the low-cost
// alternative; duplication is "very effective but tends to be also very
// expensive").  Runs the same error subsets under both mechanisms and
// reports coverage plus measured CPU cost per run.
//
// Options as in the campaign harnesses (default here: 3 test cases, bits
// 0/5/10/14, plus a sweep over task-context entry bytes in the stack).
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "fi/duplex.hpp"
#include "stats/estimator.hpp"

using namespace easel;

namespace {

struct Cost {
  stats::Proportion detected;
  stats::Proportion detected_given_fail;
  double seconds = 0.0;
  std::size_t runs = 0;
};

template <typename Fn>
void timed(Cost& cost, Fn&& run) {
  const auto start = std::chrono::steady_clock::now();
  const auto [detected, failed] = run();
  cost.seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ++cost.runs;
  cost.detected.add(detected);
  if (failed) cost.detected_given_fail.add(detected);
}

}  // namespace

int main(int argc, char** argv) {
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 3;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();
  const fi::TargetInfo target = fi::probe_target();

  // Error subset: E1 bits spanning LSB to sign region, plus the six task
  // entry low bytes in the stack (control-flow errors).
  std::vector<fi::ErrorSpec> subset;
  for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
    for (const unsigned bit : {0u, 5u, 10u, 14u}) subset.push_back(errors[s * 16 + bit]);
  }
  for (const std::size_t offset : {1u, 13u, 25u, 37u, 57u, 69u}) {
    fi::ErrorSpec spec;
    spec.address = target.ram_bytes + offset;
    spec.bit = 2;
    spec.region = mem::Region::stack;
    spec.label = "K" + std::to_string(offset);
    subset.push_back(spec);
  }

  Cost baseline_cost, assertion_cost, duplex_cost;
  for (const auto& error : subset) {
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const std::uint64_t noise =
          util::Rng{options.seed}.derive("sensor-noise", ci).seed();
      timed(baseline_cost, [&] {
        fi::RunConfig config;
        config.test_case = cases[ci];
        config.error = error;
        config.assertions = arrestor::kNoAssertions;
        config.observation_ms = options.observation_ms;
        config.noise_seed = noise;
        const fi::RunResult r = fi::run_experiment(config);
        return std::pair{r.detected, r.failed};
      });
      timed(assertion_cost, [&] {
        fi::RunConfig config;
        config.test_case = cases[ci];
        config.error = error;
        config.observation_ms = options.observation_ms;
        config.noise_seed = noise;
        const fi::RunResult r = fi::run_experiment(config);
        return std::pair{r.detected, r.failed};
      });
      timed(duplex_cost, [&] {
        fi::DuplexConfig config;
        config.test_case = cases[ci];
        config.error = error;
        config.observation_ms = options.observation_ms;
        config.noise_seed = noise;
        const fi::DuplexResult r = fi::run_duplex_experiment(config);
        return std::pair{r.detected, r.failed};
      });
    }
  }

  std::printf("Assertions vs duplex over %zu errors x %zu cases (incl. 6 stack "
              "control-flow errors):\n\n",
              subset.size(), cases.size());
  const auto per_run = [](const Cost& cost) {
    return 1000.0 * cost.seconds / static_cast<double>(cost.runs);
  };
  std::printf("%-22s %10s %14s %14s %12s\n", "mechanism", "P(d) %", "P(d|fail) %",
              "ms per run", "HW cost");
  std::printf("%-22s %10.1f %14.1f %14.1f %12s\n", "none (baseline)",
              100.0 * baseline_cost.detected.point(),
              100.0 * baseline_cost.detected_given_fail.point(), per_run(baseline_cost),
              "1 channel");
  std::printf("%-22s %10.1f %14.1f %14.1f %12s\n", "executable assertions",
              100.0 * assertion_cost.detected.point(),
              100.0 * assertion_cost.detected_given_fail.point(), per_run(assertion_cost),
              "+28 B RAM");
  std::printf("%-22s %10.1f %14.1f %14.1f %12s\n", "duplex comparison",
              100.0 * duplex_cost.detected.point(),
              100.0 * duplex_cost.detected_given_fail.point(), per_run(duplex_cost),
              "2 channels");
  std::printf(
      "\n(the paper's framing quantified: duplication approaches total coverage —\n"
      " including control-flow errors the assertions never see — but needs a complete\n"
      " second channel.  CPU ratios here overstate both mechanisms' cost: this\n"
      " simulator's application does a few dozen operations per tick, so checks are\n"
      " large relative to it; see bench_micro_assertions for absolute per-test cost)\n");
  return 0;
}
