// Ablation: sensitivity to the injection period.  The paper injects every
// 20 ms ("errors may have been injected during the execution of the
// executable assertions"); this harness sweeps the period to show how the
// intermittent-error rate shifts detection probability and latency.
//
// Options as in the campaign harnesses (default here: 5 test cases, bits
// 2/9/13 of SetValue, pulscnt and OutValue).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/estimator.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 5;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();

  const arrestor::MonitoredSignal signals[] = {arrestor::MonitoredSignal::set_value,
                                               arrestor::MonitoredSignal::pulscnt,
                                               arrestor::MonitoredSignal::out_value};
  const unsigned bits[] = {2, 9, 13};

  std::printf("Injection-period ablation (3 signals x 3 bits x %zu cases per point):\n\n",
              cases.size());
  std::printf("%12s %10s %10s %12s %12s\n", "period [ms]", "P(d) %", "fail %", "avg lat ms",
              "max lat ms");

  for (const std::uint32_t period : {5u, 20u, 100u, 500u, 2000u}) {
    stats::Proportion detected, failed;
    stats::LatencyStats latency;
    for (const auto signal : signals) {
      for (const unsigned bit : bits) {
        for (std::size_t ci = 0; ci < cases.size(); ++ci) {
          fi::RunConfig config;
          config.test_case = cases[ci];
          config.error = errors[static_cast<std::size_t>(signal) * 16 + bit];
          config.injection_period_ms = period;
          config.observation_ms = options.observation_ms;
          config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
          const fi::RunResult r = fi::run_experiment(config);
          detected.add(r.detected);
          failed.add(r.failed);
          if (r.detected) latency.add(r.latency_ms);
        }
      }
    }
    std::printf("%12u %10.1f %10.1f %12.0f %12llu\n", period, 100.0 * detected.point(),
                100.0 * failed.point(), latency.average(),
                static_cast<unsigned long long>(latency.max()));
  }
  std::printf("\n(rarer injections -> fewer chances per window: lower P(d), longer latency)\n");
  return 0;
}
