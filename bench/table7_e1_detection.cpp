// Regenerates paper Table 7: error-detection probabilities per injected
// signal x executable-assertion version, with 95 % confidence intervals,
// from the full E1 campaign (8 versions x 112 errors x 25 test cases =
// 22 400 runs at default scale).
//
// The campaign results are cached on disk so bench_table8_e1_latency (a
// second view of the same runs) does not have to repeat them.  Runs are
// spread over --jobs workers; the results are identical for any job count.
#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "bench_daemon.hpp"
#include "fi/report.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  fi::PruneStats prune_stats;
  options.prune_stats = &prune_stats;
  const std::string key = fi::campaign_key(options);
  const std::string cache = bench::e1_cache_path();

  if (const std::string daemon = bench::via_daemon(); !daemon.empty()) {
    const bench::WallTimer timer;
    const auto submitted = bench::submit_or_die(bench::spec_for(options, "e1"), daemon);
    std::istringstream blob{submitted.blob};
    const auto results = fi::load_e1(blob, submitted.key);
    if (!results) return 1;  // unreachable: the client verified the blob
    // Client-observed throughput: daemon execution + store + wire.
    bench::record_campaign("table7_e1_detection_via_daemon", options, submitted.key,
                           results->runs, timer.seconds(),
                           /*cached=*/submitted.stats.misses == 0);
    std::printf("%s\n", fi::render_table7(*results).c_str());
    std::printf("%s\n", fi::render_e1_summary(*results).c_str());
    return 0;
  }

  const bench::WallTimer timer;
  bool cached = false;
  double wall = 0.0;
  fi::E1Results results;
  if (const auto loaded = fi::load_e1(cache, key)) {
    std::fprintf(stderr, "using cached E1 campaign from %s\n", cache.c_str());
    results = *loaded;
    cached = true;
    wall = timer.seconds();
  } else {
    std::fprintf(stderr,
                 "running E1 campaign: 8 versions x 112 errors x %zu cases, %u-ms window, "
                 "%zu jobs\n",
                 options.test_case_count, options.observation_ms, options.jobs);
    wall = bench::best_of_repeat([&] { results = fi::run_e1(options); });
    save_e1(results, cache, key);
  }
  bench::record_campaign("table7_e1_detection", options, key, results.runs, wall, cached,
                         &prune_stats);

  std::printf("%s\n", fi::render_table7(results).c_str());
  std::printf("%s\n", fi::render_e1_summary(results).c_str());
  return 0;
}
