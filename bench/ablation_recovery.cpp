// Ablation: what does recovery buy?  The paper evaluates detection only
// (§2: recovery "may be invoked"); this harness runs an E1 subset under
// each recovery policy and compares failure rates — the fraction of runs
// that violate the arrestment constraints — with detection held identical.
//
// Options as in the campaign harnesses (default here: 5 test cases, bits
// 3/7/11/14 of every signal).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/estimator.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 5;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();
  const unsigned bits[] = {3, 7, 11, 14};

  std::printf("Recovery ablation over %zu signals x 4 bits x %zu cases:\n\n",
              static_cast<std::size_t>(arrestor::kMonitoredSignalCount), cases.size());
  std::printf("%-18s %10s %10s %12s %12s\n", "policy", "P(d) %", "fail %", "avg lat ms",
              "overrun %");

  for (const auto policy :
       {core::RecoveryPolicy::none, core::RecoveryPolicy::hold_previous,
        core::RecoveryPolicy::clamp_to_bounds, core::RecoveryPolicy::rate_limit}) {
    stats::Proportion detected, failed, overrun;
    stats::LatencyStats latency;
    for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
      for (const unsigned bit : bits) {
        for (std::size_t ci = 0; ci < cases.size(); ++ci) {
          fi::RunConfig config;
          config.test_case = cases[ci];
          config.error = errors[s * 16 + bit];
          config.recovery = policy;
          config.observation_ms = options.observation_ms;
          config.injection_period_ms = options.injection_period_ms;
          config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
          const fi::RunResult r = fi::run_experiment(config);
          detected.add(r.detected);
          failed.add(r.failed);
          overrun.add(r.failure == arrestor::FailureKind::overrun);
          if (r.detected) latency.add(r.latency_ms);
        }
      }
    }
    std::printf("%-18s %10.1f %10.1f %12.0f %12.1f\n",
                std::string{core::to_string(policy)}.c_str(), 100.0 * detected.point(),
                100.0 * failed.point(), latency.average(), 100.0 * overrun.point());
  }
  std::printf(
      "\n(hold-previous cuts the failure rate at identical detection; clamp-to-bounds can\n"
      " make things WORSE — it legalises an erroneous extreme instead of discarding it)\n");
  return 0;
}
