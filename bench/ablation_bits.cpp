// Ablation: per-bit detectability.  For every monitored signal and every
// bit position, what fraction of runs detects the error (all-assertions
// version)?  This exposes the mechanism behind the paper's §5.1
// observation: counters detect in every bit, while continuous signals let
// low-order bits pass — "errors in the least significant bits may be
// indistinguishable from noise".
//
// Options as in the campaign harnesses (default here: 5 test cases).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 5;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();

  std::printf("Per-bit detection probability (%%), all assertions active, %zu cases:\n\n",
              cases.size());
  std::printf("%-12s", "signal\\bit");
  for (int bit = 0; bit < 16; ++bit) std::printf("%4d", bit);
  std::printf("\n");

  for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
    const auto signal = static_cast<arrestor::MonitoredSignal>(s);
    std::printf("%-12s", arrestor::to_string(signal));
    for (unsigned bit = 0; bit < 16; ++bit) {
      std::size_t detected = 0;
      for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        fi::RunConfig config;
        config.test_case = cases[ci];
        config.error = errors[s * 16 + bit];
        config.observation_ms = options.observation_ms;
        config.injection_period_ms = options.injection_period_ms;
        config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
        if (fi::run_experiment(config).detected) ++detected;
      }
      std::printf("%4.0f", 100.0 * static_cast<double>(detected) /
                               static_cast<double>(cases.size()));
    }
    std::printf("\n");
  }
  std::printf("\n(counters i/pulscnt/ms_slot_nbr/mscnt should read ~100 across all bits;\n"
              " SetValue/IsValue should fade toward 0 in the low-order bits; OutValue lowest.)\n");
  return 0;
}
