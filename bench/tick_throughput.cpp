// Single-thread hot-path microbenchmark (no campaign, no thread pool).
//
// Two numbers, measured after a warmup and over several repetitions:
//
//   golden.ticks_per_sec  — 1-ms rig ticks per second on a fault-free run
//                           (the raw cost of scheduler + modules + monitors
//                           + environment per simulated millisecond);
//   faulty.runs_per_sec   — full injected runs per second through one
//                           reused run context, over an E1 slice spanning
//                           every monitored signal (the campaign steady
//                           state); fresh.runs_per_sec is the same slice
//                           through the build-a-rig-per-run path,
//                           isolating the context-reuse gain.
//
// --target NAME benches a non-default target's rig through the same
// harness; the target name is printed and recorded so multi-target
// trajectories never collide.
//
// The detection-count checksum is printed and recorded so a throughput
// change that alters results (it must not) is caught at a glance.
//
// Results append to <out-dir>/BENCH_hotpath.json.  Scale flags are shared
// with the campaign benches (--quick, --obs-ms, --seed, --out-dir); --quick
// is recommended in CI.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fi/experiment.hpp"
#include "fi/run_context.hpp"
#include "target/target.hpp"
#include "trace/recorder.hpp"

namespace {

using easel::fi::RunConfig;
using easel::fi::RunResult;

constexpr int kRepetitions = 3;

/// E1 slice used for the faulty-run measurements: one error per monitored
/// signal (bits vary so the slice is not all bit-0), over each test case.
std::vector<RunConfig> faulty_slice(const easel::fi::CampaignOptions& options,
                                    const easel::target::Target& target) {
  const auto errors = target.make_e1();
  const auto cases = easel::sim::random_test_cases(
      options.test_case_count, easel::util::Rng{options.seed}.derive("test-cases"));
  std::vector<RunConfig> slice;
  // With 16 directed errors per monitored signal, stride count/signals + 1
  // (17 for both current targets) picks every signal once at an ascending
  // bit position, so the slice is not all bit-0.
  const std::size_t stride = errors.size() / target.signal_count() + 1;
  for (std::size_t e = 0; e < errors.size(); e += stride) {
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      RunConfig config;
      config.test_case = cases[ci];
      config.assertions = target.version_mask(target.version_count() - 1);
      config.error = errors[e];
      config.observation_ms = options.observation_ms;
      config.noise_seed = easel::util::Rng{options.seed}.derive("sensor-noise", ci).seed();
      slice.push_back(config);
    }
  }
  return slice;
}

struct Measurement {
  double best_per_sec = 0.0;
  std::uint64_t checksum = 0;  ///< accumulated detection counts (bit-identity signal)
};

template <typename Body>
Measurement measure(std::size_t units_per_rep, Body&& body) {
  Measurement m;
  (void)body(m.checksum);  // warmup (also primes the checksum once)
  m.checksum = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    std::uint64_t checksum = 0;
    const bench::WallTimer timer;
    body(checksum);
    const double seconds = timer.seconds();
    const double per_sec =
        seconds > 0.0 ? static_cast<double>(units_per_rep) / seconds : 0.0;
    if (per_sec > m.best_per_sec) m.best_per_sec = per_sec;
    if (rep == 0) {
      m.checksum = checksum;
    } else if (checksum != m.checksum) {
      std::fprintf(stderr, "tick_throughput: checksum drift across repetitions!\n");
      std::exit(1);
    }
  }
  return m;
}

void record_hotpath(const easel::fi::CampaignOptions& options,
                    const easel::target::Target& target, const Measurement& golden,
                    const Measurement& traced, const Measurement& fresh,
                    const Measurement& reused) {
  const std::string path = bench::out_dir() + "/BENCH_hotpath.json";
  std::ofstream out{path, std::ios::trunc};
  out << "{\n"
      << "  \"bench\": \"tick_throughput\",\n"
      << "  \"target\": \"" << target.name() << "\",\n"
      << "  \"cases\": " << options.test_case_count << ",\n"
      << "  \"obs_ms\": " << options.observation_ms << ",\n"
      << "  \"seed\": " << options.seed << ",\n"
      << "  \"repetitions\": " << kRepetitions << ",\n"
      << "  \"golden_ticks_per_sec\": " << golden.best_per_sec << ",\n"
      << "  \"golden_ticks_per_sec_traced\": " << traced.best_per_sec << ",\n"
      << "  \"trace_hook_compiled_in\": "
      << (easel::trace::Recorder::compiled_in() ? "true" : "false") << ",\n"
      << "  \"fresh_rig_runs_per_sec\": " << fresh.best_per_sec << ",\n"
      << "  \"reused_rig_runs_per_sec\": " << reused.best_per_sec << ",\n"
      << "  \"detection_checksum\": " << reused.checksum << "\n"
      << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::parse_options(argc, argv);
  options.progress = nullptr;  // single-thread micro runs; no progress spam
  const easel::target::Target& target =
      options.target != nullptr ? *options.target : easel::target::default_target();
  const bool default_target = options.target == nullptr;

  // Golden runs: fault-free, so throughput is pure tick cost.
  RunConfig golden_config;
  golden_config.assertions = target.version_mask(target.version_count() - 1);
  golden_config.observation_ms = options.observation_ms;
  golden_config.noise_seed = easel::util::Rng{options.seed}.derive("sensor-noise", 0).seed();
  constexpr std::size_t kGoldenRuns = 4;
  const Measurement golden =
      measure(kGoldenRuns * options.observation_ms, [&](std::uint64_t& checksum) {
        const auto context = target.make_run_context();
        for (std::size_t i = 0; i < kGoldenRuns; ++i) {
          checksum += context->run(golden_config).detection_count;
        }
      });

  // Traced golden runs: the same fault-free workload with the trace
  // recorder installed (when compiled in).  Compared against plain golden,
  // this is the recorder's per-tick cost; under EASEL_TRACE=OFF the two
  // measurements bound the hook's zero-cost claim.
  const Measurement traced =
      measure(kGoldenRuns * options.observation_ms, [&](std::uint64_t& checksum) {
        easel::trace::Recorder recorder;
        RunConfig config = golden_config;
        config.trace = &recorder;
        const auto context = target.make_run_context();
        for (std::size_t i = 0; i < kGoldenRuns; ++i) {
          checksum += context->run(config).detection_count;
        }
      });
  if (traced.checksum != golden.checksum) {
    std::fprintf(stderr, "tick_throughput: traced/golden checksum mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(traced.checksum),
                 static_cast<unsigned long long>(golden.checksum));
    return 1;
  }

  const auto slice = faulty_slice(options, target);
  // The default target's fresh path stays run_experiment (the historical
  // build-a-rig-per-run baseline); other targets build a context per run,
  // which is the same shape through the interface.
  const Measurement fresh = measure(slice.size(), [&](std::uint64_t& checksum) {
    if (default_target) {
      for (const auto& config : slice) checksum += run_experiment(config).detection_count;
    } else {
      for (const auto& config : slice) {
        checksum += target.make_run_context()->run(config).detection_count;
      }
    }
  });
  const Measurement reused = measure(slice.size(), [&](std::uint64_t& checksum) {
    const auto context = target.make_run_context();
    for (const auto& config : slice) checksum += context->run(config).detection_count;
  });

  if (fresh.checksum != reused.checksum) {
    std::fprintf(stderr, "tick_throughput: fresh/reused checksum mismatch (%llu vs %llu)\n",
                 static_cast<unsigned long long>(fresh.checksum),
                 static_cast<unsigned long long>(reused.checksum));
    return 1;
  }

  std::printf("target: %s\n", target.name().c_str());
  std::printf("golden: %.0f ticks/s   (obs window %u ms)\n", golden.best_per_sec,
              options.observation_ms);
  std::printf("traced: %.0f ticks/s   (recorder %s)\n", traced.best_per_sec,
              easel::trace::Recorder::compiled_in() ? "installed" : "compiled out");
  std::printf("faulty: %.1f runs/s reused rig, %.1f runs/s fresh rig  "
              "(%zu-run E1 slice, checksum %llu)\n",
              reused.best_per_sec, fresh.best_per_sec, slice.size(),
              static_cast<unsigned long long>(reused.checksum));
  record_hotpath(options, target, golden, traced, fresh, reused);
  return 0;
}
