// Regenerates paper Table 6: the composition of error set E1 (112 bit-flip
// errors over the seven monitored signals), plus a sample of the E2 random
// error set for inspection.
#include <cstdio>

#include "fi/report.hpp"

int main() {
  using namespace easel;
  std::printf("%s\n", fi::render_table6().c_str());

  const auto e2 = fi::make_e2_for_target(util::Rng{2000}.derive("e2-errors"));
  std::size_t ram = 0, stack = 0;
  for (const auto& error : e2) (error.region == mem::Region::ram ? ram : stack) += 1;
  std::printf("Error set E2: %zu errors (%zu RAM, %zu stack), uniform with replacement.\n",
              e2.size(), ram, stack);
  std::printf("First ten: ");
  for (std::size_t k = 0; k < 10 && k < e2.size(); ++k) {
    std::printf("%s=(%zu,%u) ", e2[k].label.c_str(), e2[k].address, e2[k].bit);
  }
  std::printf("\n");
  return 0;
}
