// Regenerates paper Table 4 (the classification of the monitored signals
// and the assertion placement, Figure 6) from the placement-process data
// model, and prints the memory-map facts the E2 campaign depends on.
#include <cstdio>

#include "arrestor/assertions.hpp"
#include "arrestor/inventory.hpp"
#include "fi/experiment.hpp"

int main() {
  using namespace easel;

  const core::SignalInventory inventory = arrestor::build_inventory();
  std::printf("Table 4. Classification of the signals.\n%s\n",
              inventory.render_table4().c_str());

  std::printf("Signal pathways (placement process, step 2):\n");
  for (const auto& pathway : inventory.pathways()) {
    std::printf("  %-24s:", pathway.name.c_str());
    for (const auto& signal : pathway.signals) std::printf(" -> %s", signal.c_str());
    std::printf("\n");
  }

  const auto unfinished = inventory.unfinished();
  std::printf("\nPlacement process steps 1-7: %s\n",
              unfinished.empty() ? "complete" : "INCOMPLETE");
  for (const auto& item : unfinished) std::printf("  missing: %s\n", item.c_str());

  std::printf("\nSignals identified: %zu total, %zu service-critical (paper: 24 / 7)\n",
              inventory.signals().size(), inventory.service_critical().size());

  const fi::TargetInfo target = fi::probe_target();
  std::printf("\nMaster-node memory image: %zu B application RAM (%zu B allocated, %zu B "
              "headroom), %zu B stack\n",
              target.ram_bytes, target.ram_bytes_allocated,
              target.ram_bytes - target.ram_bytes_allocated, target.stack_bytes);
  std::printf("Monitored signal addresses:");
  for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
    std::printf(" %s@%zu", arrestor::to_string(static_cast<arrestor::MonitoredSignal>(s)),
                target.signal_addresses[s]);
  }
  std::printf("\n\nStep-6 parameter sets (ROM):\n");
  for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
    const auto signal = static_cast<arrestor::MonitoredSignal>(s);
    if (signal == arrestor::MonitoredSignal::ms_slot_nbr) {
      std::printf("  EA%u %-11s Pdisc: D = {0..6}, T(d) = {(d+1) mod 7}\n",
                  arrestor::ea_number(signal), arrestor::to_string(signal));
      continue;
    }
    const auto p = arrestor::rom_continuous_params(signal);
    std::printf("  EA%u %-11s Pcont: smin=%d smax=%d r_incr=[%d,%d] r_decr=[%d,%d] wrap=%s\n",
                arrestor::ea_number(signal), arrestor::to_string(signal), p.smin, p.smax,
                p.rmin_incr, p.rmax_incr, p.rmin_decr, p.rmax_decr, p.wrap ? "yes" : "no");
  }
  return 0;
}
