// Microbenchmarks: the CPU cost of the mechanisms themselves.  The paper
// positions executable assertions as a low-cost technique; these numbers
// quantify "low": single-digit nanoseconds per continuous test, and a
// small relative overhead on a full node tick.
#include <benchmark/benchmark.h>

#include "arrestor/master_node.hpp"
#include "arrestor/slave_node.hpp"
#include "core/channel.hpp"
#include "fi/experiment.hpp"
#include "sim/environment.hpp"

using namespace easel;

namespace {

void BM_ContinuousAssertion_InBand(benchmark::State& state) {
  const core::ContinuousAssertion assertion{core::ContinuousParams{
      .smax = 9000, .smin = 0, .rmin_incr = 0, .rmax_incr = 128, .rmin_decr = 0,
      .rmax_decr = 128, .wrap = false}};
  core::sig_t s = 4000;
  for (auto _ : state) {
    s = s == 4000 ? 4050 : 4000;
    benchmark::DoNotOptimize(assertion.check(s, 4000));
  }
}
BENCHMARK(BM_ContinuousAssertion_InBand);

void BM_ContinuousAssertion_Wrap(benchmark::State& state) {
  const core::ContinuousAssertion assertion{core::ContinuousParams{
      .smax = 1000, .smin = 0, .rmin_incr = 50, .rmax_incr = 50, .rmin_decr = 0,
      .rmax_decr = 0, .wrap = true}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(assertion.check(24, 975));  // wrapped increase
  }
}
BENCHMARK(BM_ContinuousAssertion_Wrap);

void BM_DiscreteAssertion(benchmark::State& state) {
  const core::DiscreteAssertion assertion{core::make_linear_cycle({0, 1, 2, 3, 4, 5, 6}),
                                          true};
  core::sig_t s = 0;
  for (auto _ : state) {
    const core::sig_t next = s == 6 ? 0 : s + 1;
    benchmark::DoNotOptimize(assertion.check(next, s));
    s = next;
  }
}
BENCHMARK(BM_DiscreteAssertion);

void BM_Channel_Test(benchmark::State& state) {
  auto channel = core::Channel::continuous(
      "bench", core::SignalClass::continuous_random,
      {.smax = 10000, .smin = 0, .rmin_incr = 0, .rmax_incr = 100, .rmin_decr = 0,
       .rmax_decr = 100, .wrap = false});
  core::sig_t s = 5000;
  for (auto _ : state) {
    s = s == 5000 ? 5050 : 5000;
    benchmark::DoNotOptimize(channel.test(s));
  }
}
BENCHMARK(BM_Channel_Test);

/// One node tick with the given assertion mask (overhead ablation: the
/// difference between mask 0x7f and 0x00 is the whole mechanism cost).
void node_tick(benchmark::State& state, arrestor::EaMask mask) {
  sim::Environment env{sim::TestCase{14000.0, 60.0}, util::Rng{1}};
  core::DetectionBus bus;
  arrestor::MasterNode master{env, bus, mask};
  arrestor::SlaveNode slave{env};
  std::uint64_t now = 0;
  for (auto _ : state) {
    bus.set_time_ms(now++);
    master.tick();
    slave.tick();
    env.step_1ms();
  }
}

void BM_NodeTick_NoAssertions(benchmark::State& state) {
  node_tick(state, arrestor::kNoAssertions);
}
BENCHMARK(BM_NodeTick_NoAssertions);

void BM_NodeTick_AllAssertions(benchmark::State& state) {
  node_tick(state, arrestor::kAllAssertions);
}
BENCHMARK(BM_NodeTick_AllAssertions);

void BM_FullRun_Golden(benchmark::State& state) {
  fi::RunConfig config;
  config.test_case = {14000.0, 60.0};
  config.observation_ms = 10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fi::run_experiment(config));
  }
}
BENCHMARK(BM_FullRun_Golden)->Unit(benchmark::kMillisecond);

}  // namespace
