// Ablation: static Pcont bands vs the predictive-constraint extension
// (paper §2.1: "dynamic constraints as in [4] and [14] may also be
// considered").
//
// Workload: a regulator-style signal that idles, ramps at up to 100 units
// per sample, and holds — the profile that forces a static random-class
// band to rmax >= 100.  For every bit position we replay the trace with a
// periodically re-injected bit-flip and ask which mechanism reports at
// least once.  The static band is blind below its rate bound; the
// predictive window stays tight whenever the signal is locally steady.
#include <cstdio>
#include <vector>

#include "core/easel.hpp"
#include "util/rng.hpp"

using namespace easel;
using core::sig_t;

namespace {

std::vector<sig_t> make_profile(util::Rng rng) {
  std::vector<sig_t> profile;
  sig_t level = 2000;
  const auto hold = [&](int n) {
    for (int k = 0; k < n; ++k) {
      level += static_cast<sig_t>(rng.uniform_i64(-3, 3));
      profile.push_back(level);
    }
  };
  const auto ramp = [&](sig_t target) {
    while (level != target) {
      const sig_t step = static_cast<sig_t>(rng.uniform_i64(60, 100));
      level += level < target ? std::min(step, static_cast<sig_t>(target - level))
                              : -std::min(step, static_cast<sig_t>(level - target));
      profile.push_back(level);
    }
  };
  hold(300);
  ramp(6500);
  hold(500);
  ramp(3000);
  hold(700);
  ramp(7500);
  hold(400);
  return profile;
}

struct Outcome {
  bool detected = false;
  int false_alarms = 0;
};

template <typename CheckFn>
Outcome replay(const std::vector<sig_t>& profile, unsigned bit, CheckFn&& check) {
  Outcome outcome;
  for (std::size_t k = 0; k < profile.size(); ++k) {
    sig_t s = profile[k];
    if (bit < 16 && (k / 20) % 2 == 1) s ^= 1 << bit;  // 20-sample injection cadence
    if (!check(s)) {
      if (bit < 16) {
        outcome.detected = true;
      } else {
        ++outcome.false_alarms;  // clean replay: any report is a false alarm
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  const std::vector<sig_t> profile = make_profile(util::Rng{2024});

  const core::ContinuousParams static_params{.smax = 8000, .smin = 0, .rmin_incr = 0,
                                             .rmax_incr = 110, .rmin_decr = 0,
                                             .rmax_decr = 110, .wrap = false};
  const core::PredictiveParams dynamic_params{.smax = 8000, .smin = 0, .base_tolerance = 10,
                                              .slack_num = 1, .slack_den = 2,
                                              .ema_shift = 2};

  const auto static_outcome = [&](unsigned bit) {
    core::ContinuousMonitor monitor{core::SignalClass::continuous_random, static_params};
    core::MonitorState state;
    return replay(profile, bit, [&](sig_t s) { return monitor.check(s, state).ok; });
  };
  const auto dynamic_outcome = [&](unsigned bit) {
    const core::PredictiveAssertion assertion{dynamic_params};
    core::TrendState state;
    return replay(profile, bit, [&](sig_t s) { return assertion.check(s, state).ok; });
  };

  std::printf("Static Co/Ra band (rmax 110) vs predictive window on a %zu-sample profile\n",
              profile.size());
  std::printf("(clean-replay false alarms: static %d, predictive %d — must both be 0)\n\n",
              static_outcome(16).false_alarms, dynamic_outcome(16).false_alarms);

  std::printf("%4s %10s %12s\n", "bit", "static", "predictive");
  int static_detected = 0, dynamic_detected = 0;
  for (unsigned bit = 0; bit < 16; ++bit) {
    const bool st = static_outcome(bit).detected;
    const bool dy = dynamic_outcome(bit).detected;
    static_detected += st ? 1 : 0;
    dynamic_detected += dy ? 1 : 0;
    std::printf("%4u %10s %12s\n", bit, st ? "detected" : "-", dy ? "detected" : "-");
  }
  std::printf("\ndetected bits: static %d/16, predictive %d/16\n", static_detected,
              dynamic_detected);
  std::printf("(the predictive window should add several low-order bits at zero false "
              "alarms)\n");
  return 0;
}
