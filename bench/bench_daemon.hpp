// --via-daemon support for the campaign benches: instead of executing the
// campaign in-process, build the equivalent CampaignSpec, submit it to a
// running easel-campaignd, and load the returned blob.  The timer around
// the submission then measures *client-observed* throughput — daemon
// execution plus store lookups plus the wire — which is the number that
// matters when deciding whether campaign-as-a-service pays for itself.
//
// Results are bit-identical to the in-process path by construction (the
// client verifies the result key and blob before returning), so a bench
// run via the daemon prints exactly the tables it prints without it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

#include "svc/client.hpp"
#include "util/strings.hpp"

namespace bench {

/// Splits "HOST:PORT"; exits with a usage error on malformed input (same
/// contract as the other strict bench parsers).
inline void parse_daemon_target(const std::string& target, std::string* host,
                                std::uint16_t* port) {
  const std::size_t colon = target.rfind(':');
  const auto parsed = colon != std::string::npos && colon > 0
                          ? easel::util::parse_u64(std::string_view{target}.substr(colon + 1))
                          : std::nullopt;
  if (!parsed || *parsed == 0 || *parsed > 65535) {
    std::fprintf(stderr, "easel bench: --via-daemon expects HOST:PORT, got '%s'\n",
                 target.c_str());
    std::exit(2);
  }
  *host = target.substr(0, colon);
  *port = static_cast<std::uint16_t>(*parsed);
}

/// The spec equivalent of in-process campaign options.  Shard count 0
/// leaves the decomposition to the daemon.
inline easel::svc::CampaignSpec spec_for(const easel::fi::CampaignOptions& options,
                                         const std::string& series) {
  easel::svc::CampaignSpec spec;
  spec.series = series;
  spec.seed = options.seed;
  spec.cases = options.test_case_count;
  spec.obs_ms = options.observation_ms;
  spec.period_ms = options.injection_period_ms;
  spec.recovery = static_cast<int>(options.recovery);
  spec.prune = options.prune;
  spec.verify_prune = options.verify_prune;
  if (options.params != nullptr) {
    std::ostringstream params;
    easel::arrestor::save(*options.params, params);
    spec.params_text = params.str();
  }
  return spec;
}

/// Submits and returns the raw result; exits with a diagnostic when the
/// daemon is unreachable or rejects (a bench run with a dead daemon should
/// fail loudly, not silently fall back and publish in-process numbers).
inline easel::svc::Client::SubmitResult submit_or_die(const easel::svc::CampaignSpec& spec,
                                                      const std::string& target) {
  std::string host, error;
  std::uint16_t port = 0;
  parse_daemon_target(target, &host, &port);
  auto client = easel::svc::Client::connect(host, port, &error);
  auto result = client ? client->submit(spec, &error) : std::nullopt;
  if (!result) {
    std::fprintf(stderr, "easel bench: --via-daemon %s failed: %s\n", target.c_str(),
                 error.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "campaignd-stats: shards=%zu hits=%zu misses=%zu peer=%zu runs=%llu\n",
               result->stats.shards, result->stats.hits, result->stats.misses,
               result->stats.peer_shards,
               static_cast<unsigned long long>(result->stats.runs));
  return *result;
}

}  // namespace bench
