// Evaluates the §2.4 coverage model Pdetect = (Pen*Pprop + Pem)*Pds over
// parameter grids and reproduces the paper's worked interpretation: with
// Pds = 74 % measured by E1, whole-system coverage depends on where errors
// occur and how they propagate; if errors concentrate in SetValue, Pdetect
// approaches that signal's ~59 % (paper §5.2).
#include <cstdio>

#include "core/coverage_model.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

int main() {
  using namespace easel;

  std::printf("Coverage model: Pdetect = (Pen*Pprop + Pem) * Pds   (paper section 2.4)\n\n");

  // Grid: Pdetect as a function of Pem and Pprop at the paper's Pds = 0.74.
  const double p_ds = 0.74;
  stats::Table grid{{"Pem \\ Pprop", "0.0", "0.2", "0.4", "0.6", "0.8", "1.0"}};
  for (const double p_em : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    std::vector<std::string> row{util::format_fixed(p_em, 2)};
    for (const double p_prop : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      core::CoverageModel model{p_em, p_prop, p_ds};
      model.validate();
      row.push_back(util::format_fixed(100.0 * model.p_detect(), 1));
    }
    grid.add_row(std::move(row));
  }
  std::printf("Pdetect (%%) at Pds = 0.74:\n%s\n", grid.render().c_str());

  // The paper's worked extremes.
  core::CoverageModel uniform{1.0, 0.0, 0.74};
  std::printf("errors uniformly over monitored signals (Pem = 1):   Pdetect = %.0f%%"
              "  (paper: 74%%)\n",
              100.0 * uniform.p_detect());
  core::CoverageModel set_value_bound{1.0, 0.0, 0.59};
  std::printf("errors concentrating in SetValue (Pds -> 59%%):       Pdetect = %.0f%%"
              "  (paper: ~59%%)\n\n",
              100.0 * set_value_bound.p_detect());

  // Inverse use: solving for the propagation probability.
  std::printf("solve_p_prop examples:\n");
  for (const double p_detect : {0.05, 0.106, 0.128, 0.30}) {
    try {
      const double p_prop = core::solve_p_prop(p_detect, 14.0 / 417.0, 0.74);
      std::printf("  Pdetect = %.3f, Pem = 14/417, Pds = 0.74  ->  Pprop = %.3f\n", p_detect,
                  p_prop);
    } catch (const std::domain_error& e) {
      std::printf("  Pdetect = %.3f: %s\n", p_detect, e.what());
    }
  }
  return 0;
}
