// Regenerates paper Table 8: error-detection latencies (min / average /
// max, milliseconds) per injected signal x executable-assertion version,
// over all detected errors of the E1 campaign.
//
// Reuses the campaign cached by bench_table7_e1_detection when available
// (same runs, different view); otherwise runs the campaign itself, spread
// over --jobs workers.
#include <cstdio>

#include "bench_common.hpp"
#include "fi/report.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  fi::PruneStats prune_stats;
  options.prune_stats = &prune_stats;
  const std::string key = fi::campaign_key(options);
  const std::string cache = bench::e1_cache_path();

  const bench::WallTimer timer;
  bool cached = false;
  double wall = 0.0;
  fi::E1Results results;
  if (const auto loaded = fi::load_e1(cache, key)) {
    std::fprintf(stderr, "using cached E1 campaign from %s\n", cache.c_str());
    results = *loaded;
    cached = true;
    wall = timer.seconds();
  } else {
    std::fprintf(stderr,
                 "running E1 campaign: 8 versions x 112 errors x %zu cases, %u-ms window, "
                 "%zu jobs\n",
                 options.test_case_count, options.observation_ms, options.jobs);
    wall = bench::best_of_repeat([&] { results = fi::run_e1(options); });
    save_e1(results, cache, key);
  }
  bench::record_campaign("table8_e1_latency", options, key, results.runs, wall, cached,
                         &prune_stats);

  std::printf("%s\n", fi::render_table8(results).c_str());
  const auto& all = results.totals[fi::kAllVersion].latency;
  std::printf("Average detection latency, all mechanisms active: %.0f ms (paper: 511 ms; "
              "min %llu / max %llu, paper: 20 / 7781)\n",
              all.average(), static_cast<unsigned long long>(all.min()),
              static_cast<unsigned long long>(all.max()));
  return 0;
}
