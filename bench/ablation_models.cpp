// Ablation: fault models.  The paper injects XOR bit-flips, citing [17]
// that they resemble hardware faults; this harness repeats an E1 subset
// under the stuck-at-1 and stuck-at-0 models (permanent bridging faults)
// and compares detection probability, failure rate, and latency.
//
// Options as in the campaign harnesses (default here: 5 test cases, bits
// 0/4/9/13 of every signal).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/estimator.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  fi::CampaignOptions options = bench::parse_options(argc, argv);
  if (options.test_case_count == 25) options.test_case_count = 5;  // lighter default
  const auto cases = fi::campaign_test_cases(options);
  const auto errors = fi::make_e1_for_target();
  const unsigned bits[] = {0, 4, 9, 13};

  std::printf("Fault-model ablation over %zu signals x 4 bits x %zu cases:\n\n",
              static_cast<std::size_t>(arrestor::kMonitoredSignalCount), cases.size());
  std::printf("%-12s %10s %10s %12s %12s\n", "model", "P(d) %", "fail %", "avg lat ms",
              "max lat ms");

  for (const auto model :
       {fi::FaultModel::bit_flip, fi::FaultModel::stuck_at_1, fi::FaultModel::stuck_at_0}) {
    stats::Proportion detected, failed;
    stats::LatencyStats latency;
    for (std::size_t s = 0; s < arrestor::kMonitoredSignalCount; ++s) {
      for (const unsigned bit : bits) {
        for (std::size_t ci = 0; ci < cases.size(); ++ci) {
          fi::RunConfig config;
          config.test_case = cases[ci];
          config.error = errors[s * 16 + bit];
          config.error->model = model;
          config.observation_ms = options.observation_ms;
          config.injection_period_ms = options.injection_period_ms;
          config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", ci).seed();
          const fi::RunResult r = fi::run_experiment(config);
          detected.add(r.detected);
          failed.add(r.failed);
          if (r.detected) latency.add(r.latency_ms);
        }
      }
    }
    std::printf("%-12s %10.1f %10.1f %12.0f %12llu\n",
                std::string{fi::to_string(model)}.c_str(), 100.0 * detected.point(),
                100.0 * failed.point(), latency.average(),
                static_cast<unsigned long long>(latency.max()));
  }
  std::printf(
      "\n(stuck-at faults keep re-asserting the same value: counters detect them on the\n"
      " first post-priming test, while a stuck bit equal to the current value is inert\n"
      " until the signal moves — detection and failure rates shift accordingly)\n");
  return 0;
}
