// Ablation: an external valve-refresh watchdog on top of the executable
// assertions.  Paper §5.2 attributes the poor stack-area coverage to
// control-flow errors that signal-level assertions "are not aimed at"
// detecting; a rig-side watchdog that trips when the node stops driving its
// valve is the textbook complement.  This harness sweeps every stack byte
// (one bit each, one test case) with and without the watchdog and reports
// the detected share of failure-causing stack errors.
//
// Options as in the campaign harnesses (--quick shrinks the window).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/estimator.hpp"

int main(int argc, char** argv) {
  using namespace easel;
  const fi::CampaignOptions options = bench::parse_options(argc, argv);
  const fi::TargetInfo target = fi::probe_target();

  std::printf("Stack sweep (%zu bytes x 2 bits), watchdog off vs on:\n\n", target.stack_bytes);
  std::printf("%-14s %10s %12s %14s %12s\n", "watchdog", "fail %", "P(d) %", "P(d|fail) %",
              "halts");

  for (const std::uint32_t timeout : {0u, 150u}) {
    stats::DetectionMeasures measures;
    std::size_t halts = 0;
    for (std::size_t offset = 0; offset < target.stack_bytes; ++offset) {
      for (const unsigned bit : {1u, 6u}) {
        fi::RunConfig config;
        config.test_case = {17000.0, 65.0};
        fi::ErrorSpec spec;
        spec.address = target.ram_bytes + offset;
        spec.bit = bit;
        spec.region = mem::Region::stack;
        spec.label = "K" + std::to_string(offset);
        config.error = spec;
        config.observation_ms = options.observation_ms;
        config.injection_period_ms = options.injection_period_ms;
        config.watchdog_timeout_ms = timeout;
        config.noise_seed = util::Rng{options.seed}.derive("sensor-noise", 0).seed();
        const fi::RunResult r = fi::run_experiment(config);
        measures.add(r.detected, r.failed);
        halts += r.node_halted ? 1u : 0u;
      }
    }
    const double fail_rate = static_cast<double>(measures.fail.trials) /
                             static_cast<double>(measures.all.trials);
    std::printf("%-14s %10.2f %12.2f %14.1f %12zu\n", timeout == 0 ? "off" : "150 ms",
                100.0 * fail_rate, 100.0 * measures.all.point(),
                100.0 * measures.fail.point(), halts);
  }
  std::printf("\n(the watchdog converts undetected crash/skip failures into detections;\n"
              " paper-style assertion-only stack coverage is the 'off' row)\n");
  return 0;
}
